"""Incremental (delta) placement evaluation.

Single-move search loops (simulated annealing, tabu search) evaluate
neighbors that differ from the incumbent by one or two routers.  The
scalar evaluator rebuilds the full ``(N, N)`` adjacency and ``(M, N)``
coverage matrices for every such neighbor; :class:`DeltaEvaluator`
instead caches the incumbent's state and recomputes only what the move
touches.  Results are bit-identical to the scalar path (asserted by the
parity tests).

Two cache layouts, selected by the shared engine dispatch (see
:mod:`repro.core.engine.dispatch`; the ``"compiled"`` tier reuses the
layout heuristic and routes the per-move measurement through the C
kernels of :mod:`repro.core.engine.compiled`):

* **dense** (paper scale) — the incumbent's boolean adjacency and
  coverage *matrices*; a move rewrites the touched rows/columns.
* **sparse** (city scale) — the incumbent's link-edge arrays and
  (client, router) coverage-hit pairs, plus a spatial index over the
  incumbent's router positions; a move drops the moved routers' entries
  and re-queries only their new neighborhoods, so per-move cost and
  memory stay ``O(E + H)`` (edges + coverage hits) instead of
  ``O(N^2 + M * N)``.

Protocol::

    delta = DeltaEvaluator(evaluator)
    current = delta.reset(initial)        # full build, caches state
    candidate = delta.propose(move)       # incumbent ⊕ move, caches untouched
    delta.commit(candidate)               # make the candidate the incumbent

``propose`` is speculative — any number of candidates can be previewed
from the same incumbent (tabu search previews a whole sample) and the
caches only advance on ``commit``.  Evaluation counting and archive
observation are routed through the wrapped scalar
:class:`~repro.core.evaluation.Evaluator`, so search-cost accounting is
unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.coverage import coverage_matrix
from repro.core.engine.components import labels_from_edges
from repro.core.engine.dispatch import resolve_engine
from repro.core.evaluation import Evaluation, Evaluator
from repro.core.fitness import NetworkMetrics
from repro.core.network import adjacency_matrix
from repro.core.radio import CoverageRule
from repro.core.solution import Placement

if TYPE_CHECKING:  # core must not import neighborhood at runtime
    from repro.core.engine.handoff import IncumbentCache
    from repro.neighborhood.moves import Move

__all__ = ["DeltaEvaluator"]


class DeltaEvaluator:
    """Incremental evaluation around a cached incumbent placement."""

    def __init__(self, evaluator: Evaluator, engine: str = "auto") -> None:
        self._evaluator = evaluator
        self._problem = evaluator.problem
        self._fitness = evaluator.fitness_function
        radii = self._problem.fleet.radii
        link_range = self._problem.link_rule.range_matrix(radii)
        self._range_squared = link_range * link_range
        self._radii = radii
        self._radii_squared = radii * radii
        self._engine = resolve_engine(self._problem, engine)
        # The compiled tier reuses the numpy cache layouts and only
        # swaps who crunches them, so layout still follows the size
        # heuristic even when the tier is "compiled".
        if self._engine == "compiled":
            from repro.core.engine import compiled
            from repro.core.engine.dispatch import select_engine

            self._compiled = compiled
            self._layout = select_engine(self._problem)
        else:
            self._compiled = None
            self._layout = self._engine
        self._positions: np.ndarray | None = None
        self._incumbent: Evaluation | None = None
        # Dense caches.
        self._adjacency: np.ndarray | None = None
        self._coverage: np.ndarray | None = None
        # Sparse caches.
        self._sparse = None
        self._router_index = None
        self._edge_rows: np.ndarray | None = None
        self._edge_cols: np.ndarray | None = None
        self._cov_router: np.ndarray | None = None
        self._cov_client: np.ndarray | None = None
        # The most recent propose()'s arrays, so the common SA pattern
        # "propose, then commit that same evaluation" skips re-querying.
        self._last_propose: tuple | None = None

    @property
    def problem(self):
        """The instance this evaluator measures against."""
        return self._problem

    @property
    def engine(self) -> str:
        """The resolved tier: ``"dense"``, ``"sparse"`` or ``"compiled"``."""
        return self._engine

    @property
    def layout(self) -> str:
        """The cache layout in use: ``"dense"`` or ``"sparse"``.

        Equal to :attr:`engine` for the numpy tiers; the compiled tier
        picks its layout from the same size heuristic
        (:func:`~repro.core.engine.dispatch.select_engine`).
        """
        return self._layout

    @property
    def incumbent(self) -> Evaluation:
        """The evaluation whose state is cached; requires :meth:`reset`."""
        if self._incumbent is None:
            raise ValueError("DeltaEvaluator has no incumbent; call reset() first")
        return self._incumbent

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def reset(self, placement: Placement, cache: "IncumbentCache | None" = None) -> Evaluation:
        """Full build of ``placement``; it becomes the incumbent.

        ``cache`` is an optional :class:`~repro.core.engine.handoff.IncumbentCache`
        exported by a previous run (possibly on a *different* problem —
        the previous step of a dynamic scenario).  Every cached piece
        that is still valid for this problem and placement is reused
        instead of rebuilt: the router adjacency survives client drift
        untouched, the coverage state survives radio-only relabelings.
        Stale pieces are rebuilt, so a cache never changes the resulting
        evaluation — only the reset cost.
        """
        if len(placement) != self._problem.n_routers:
            raise ValueError(
                f"placement positions {len(placement)} routers but the fleet "
                f"has {self._problem.n_routers}"
            )
        positions = placement.positions_array().copy()
        self._last_propose = None
        if self._layout == "sparse":
            evaluation = self._sparse_reset(placement, positions, cache)
        else:
            adjacency = self._cached_adjacency(positions, cache)
            if adjacency is None:
                adjacency = adjacency_matrix(
                    placement.positions_array(), self._problem.fleet.radii,
                    self._problem.link_rule,
                )
            coverage = self._cached_coverage(positions, cache)
            if coverage is None:
                coverage = coverage_matrix(
                    self._problem.clients.positions,
                    placement.positions_array(),
                    self._problem.fleet.radii,
                )
            evaluation = self._measure(placement, adjacency, coverage)
            self._adjacency = adjacency
            self._coverage = coverage
        self._positions = positions
        self._incumbent = evaluation
        self._evaluator.record_evaluation(evaluation)
        return evaluation

    def export_cache(self) -> "IncumbentCache":
        """The incumbent's state as a run-crossing :class:`IncumbentCache`.

        Arrays are copied, so the cache stays valid however this
        evaluator advances afterwards.
        """
        from repro.core.engine.handoff import IncumbentCache

        if self._incumbent is None:
            raise ValueError("DeltaEvaluator has no incumbent; call reset() first")
        common = dict(
            positions=self._positions.copy(),
            radii=self._radii,
            link_rule=self._problem.link_rule,
            client_positions=self._problem.clients.positions,
        )
        if self._layout == "sparse":
            return IncumbentCache(
                layout="sparse",
                edge_rows=self._edge_rows.copy(),
                edge_cols=self._edge_cols.copy(),
                cov_router=self._cov_router.copy(),
                cov_client=self._cov_client.copy(),
                **common,
            )
        return IncumbentCache(
            layout="dense",
            adjacency=self._adjacency.copy(),
            coverage=self._coverage.copy(),
            **common,
        )

    def _cached_adjacency(
        self, positions: np.ndarray, cache: "IncumbentCache | None"
    ) -> "np.ndarray | None":
        if (
            cache is not None
            and cache.layout == "dense"
            and cache.adjacency is not None
            and cache.network_valid_for(
                positions, self._radii, self._problem.link_rule
            )
        ):
            return cache.adjacency.copy()
        return None

    def _cached_coverage(
        self, positions: np.ndarray, cache: "IncumbentCache | None"
    ) -> "np.ndarray | None":
        if (
            cache is not None
            and cache.layout == "dense"
            and cache.coverage is not None
            and cache.coverage_valid_for(
                positions, self._radii, self._problem.clients.positions
            )
        ):
            return cache.coverage.copy()
        return None

    def propose(self, move: Move) -> Evaluation:
        """Evaluate ``incumbent ⊕ move`` without advancing the caches.

        Raises ``ValueError`` when the move no longer applies (same
        contract as ``move.apply``); callers treat that as "candidate
        unavailable", exactly like the scalar loops do.
        """
        if self._incumbent is None:
            raise ValueError("DeltaEvaluator has no incumbent; call reset() first")
        placement = move.apply(self._incumbent.placement)
        new_positions = placement.positions_array()
        moved = np.flatnonzero((new_positions != self._positions).any(axis=1))
        if self._layout == "sparse":
            rows, cols, cov_router, cov_client = self._sparse_apply(
                new_positions, moved
            )
            evaluation = self._sparse_measure(
                placement, rows, cols, cov_router, cov_client
            )
            self._last_propose = (evaluation, rows, cols, cov_router, cov_client)
        else:
            adjacency = self._adjacency.copy()
            coverage = self._coverage.copy()
            self._apply_rows(adjacency, coverage, new_positions, moved)
            evaluation = self._measure(placement, adjacency, coverage)
        self._evaluator.record_evaluation(evaluation)
        return evaluation

    def commit(self, evaluation: Evaluation) -> None:
        """Advance the caches so ``evaluation`` is the new incumbent.

        Accepts any evaluation of this problem (normally one returned by
        :meth:`propose`); only the state of routers that moved relative
        to the current incumbent is rewritten.
        """
        if self._incumbent is None:
            raise ValueError("DeltaEvaluator has no incumbent; call reset() first")
        placement = evaluation.placement
        if len(placement) != self._problem.n_routers:
            raise ValueError(
                f"placement positions {len(placement)} routers but the fleet "
                f"has {self._problem.n_routers}"
            )
        new_positions = placement.positions_array()
        moved = np.flatnonzero((new_positions != self._positions).any(axis=1))
        if self._layout == "sparse":
            if moved.size:
                cached = self._last_propose
                if cached is not None and cached[0] is evaluation:
                    _, rows, cols, cov_router, cov_client = cached
                else:
                    rows, cols, cov_router, cov_client = self._sparse_apply(
                        new_positions, moved
                    )
                self._edge_rows, self._edge_cols = rows, cols
                self._cov_router, self._cov_client = cov_router, cov_client
                self._positions[moved] = new_positions[moved]
                self._rebuild_router_index()
            self._last_propose = None
        else:
            self._apply_rows(self._adjacency, self._coverage, new_positions, moved)
            self._positions[moved] = new_positions[moved]
        self._incumbent = evaluation

    # ------------------------------------------------------------------
    # Dense internals
    # ------------------------------------------------------------------

    def _apply_rows(
        self,
        adjacency: np.ndarray,
        coverage: np.ndarray,
        positions: np.ndarray,
        moved: np.ndarray,
    ) -> None:
        """Rewrite the adjacency rows/columns and coverage columns of
        every moved router in place, against ``positions``."""
        x = positions[:, 0]
        y = positions[:, 1]
        clients = self._problem.clients.positions
        for router in moved.tolist():
            dx = x[router] - x
            dy = y[router] - y
            row = dx * dx + dy * dy <= self._range_squared[router]
            row[router] = False
            adjacency[router, :] = row
            adjacency[:, router] = row
            if clients.size:
                cdx = clients[:, 0] - x[router]
                cdy = clients[:, 1] - y[router]
                coverage[:, router] = (
                    cdx * cdx + cdy * cdy <= self._radii_squared[router]
                )

    def _measure(
        self, placement: Placement, adjacency: np.ndarray, coverage: np.ndarray
    ) -> Evaluation:
        """Metrics + fitness from ready-made adjacency/coverage matrices."""
        n = self._problem.n_routers
        if self._compiled is not None:
            giant_size, covered, n_components, n_links, giant_mask = (
                self._compiled.measure_dense_matrices(
                    adjacency,
                    coverage,
                    self._problem.coverage_rule is not CoverageRule.ANY_ROUTER,
                )
            )
            degree_total = 2 * n_links
            metrics = NetworkMetrics(
                giant_size=giant_size,
                n_routers=n,
                covered_clients=covered,
                n_clients=self._problem.n_clients,
                n_components=n_components,
                n_links=n_links,
                mean_degree=degree_total / n,
            )
            return Evaluation(
                placement=placement,
                metrics=metrics,
                fitness=self._fitness.score(metrics),
                giant_mask=giant_mask,
            )
        # One flat nonzero pass: the directed endpoint count is exactly
        # the degree total, and one direction per edge suffices for the
        # propagation (its sweeps push labels both ways).
        flat = np.flatnonzero(adjacency.ravel())
        rows = flat // n
        cols = flat % n
        one_way = rows < cols
        labels = labels_from_edges(n, rows[one_way], cols[one_way])
        counts = np.bincount(labels, minlength=n)
        # Audited tie-break: ``counts`` is indexed by canonical
        # (smallest-member) component label, and argmax returns the
        # *first* maximum, i.e. the smallest label among the largest
        # components — exactly ComponentStructure.giant_label()'s rule
        # shared by the scalar and batch paths.  An exact giant-size tie
        # is pinned by tests/core/test_giant_tiebreak.py.
        giant_label = int(counts.argmax())
        giant_mask = labels == giant_label
        degree_total = int(flat.shape[0])
        if self._problem.coverage_rule is CoverageRule.ANY_ROUTER:
            covered = int(coverage.any(axis=1).sum()) if coverage.size else 0
        else:
            masked = coverage[:, giant_mask]
            covered = int(masked.any(axis=1).sum()) if masked.size else 0
        metrics = NetworkMetrics(
            giant_size=int(counts[giant_label]),
            n_routers=n,
            covered_clients=covered,
            n_clients=self._problem.n_clients,
            n_components=int((counts > 0).sum()),
            n_links=degree_total // 2,
            # Identical to degrees().mean(): an exact integer divided by N.
            mean_degree=degree_total / n,
        )
        return Evaluation(
            placement=placement,
            metrics=metrics,
            fitness=self._fitness.score(metrics),
            giant_mask=giant_mask,
        )

    # ------------------------------------------------------------------
    # Sparse internals
    # ------------------------------------------------------------------

    def _sparse_engine(self):
        if self._sparse is None:
            from repro.core.engine.sparse import SparseEngine

            self._sparse = SparseEngine(self._problem, self._fitness)
        return self._sparse

    def _rebuild_router_index(self) -> None:
        # Full re-bin + argsort per commit: O(N log N), a deliberate
        # trade against incremental bin maintenance.  Commits happen
        # once per accepted move while proposes dominate the loop, and
        # at 4096 routers the rebuild is microseconds next to the
        # propose-side query work.
        from repro.core.engine.sparse import SpatialGridIndex

        self._router_index = SpatialGridIndex(
            self._positions, self._sparse_engine().link_cell
        )

    def _coverage_pairs(
        self, positions: np.ndarray, router_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Passing ``(router, client)`` hit pairs for the given routers."""
        return self._sparse_engine().coverage_hits(positions, router_ids)

    def _sparse_reset(
        self,
        placement: Placement,
        positions: np.ndarray,
        cache: "IncumbentCache | None" = None,
    ) -> Evaluation:
        from repro.core.engine.sparse import sparse_edges

        self._positions = positions
        self._rebuild_router_index()
        reuse_network = (
            cache is not None
            and cache.layout == "sparse"
            and cache.edge_rows is not None
            and cache.network_valid_for(
                positions, self._radii, self._problem.link_rule
            )
        )
        if reuse_network:
            rows, cols = cache.edge_rows.copy(), cache.edge_cols.copy()
        else:
            rows, cols = sparse_edges(
                positions, self._radii, self._problem.link_rule,
                index=self._router_index,
            )
        reuse_coverage = (
            cache is not None
            and cache.layout == "sparse"
            and cache.cov_router is not None
            and cache.coverage_valid_for(
                positions, self._radii, self._problem.clients.positions
            )
        )
        if reuse_coverage:
            cov_router = cache.cov_router.copy()
            cov_client = cache.cov_client.copy()
        else:
            cov_router, cov_client = self._coverage_pairs(
                positions, np.arange(positions.shape[0], dtype=np.intp)
            )
        self._edge_rows, self._edge_cols = rows, cols
        self._cov_router, self._cov_client = cov_router, cov_client
        return self._sparse_measure(placement, rows, cols, cov_router, cov_client)

    def _sparse_apply(
        self, new_positions: np.ndarray, moved: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The candidate's edge and coverage-hit arrays.

        Drops every cached entry that touches a moved router, then
        re-queries only the moved routers' new neighborhoods: link
        partners against the incumbent's router index (unmoved routers
        are exactly where the index put them) plus exhaustive pairs
        among the moved routers themselves, and coverage hits against
        the static client index.
        """
        if moved.size == 0:
            return (
                self._edge_rows, self._edge_cols,
                self._cov_router, self._cov_client,
            )
        n = self._problem.n_routers
        is_moved = np.zeros(n, dtype=bool)
        is_moved[moved] = True

        keep = ~(is_moved[self._edge_rows] | is_moved[self._edge_cols])
        row_parts = [self._edge_rows[keep]]
        col_parts = [self._edge_cols[keep]]
        # Moved-vs-unmoved links via the incumbent index.  A moved
        # router's new position may fall outside the index extent; the
        # query still finds every in-extent neighbor bin of that
        # position, and unmoved routers all live in the extent.
        from repro.core.engine.sparse import link_hits

        if self._compiled is not None:
            link_hits = self._compiled.link_hits_compiled
        link_rule = self._problem.link_rule
        local, partner = self._router_index.query_points(new_positions[moved])
        if local.size:
            sources = moved[local]
            usable = ~is_moved[partner]
            hit_rows, hit_cols = link_hits(
                new_positions, self._radii, link_rule,
                sources[usable], partner[usable],
            )
            row_parts.append(hit_rows)
            col_parts.append(hit_cols)
        # Moved-vs-moved links, each unordered pair tested once.
        if moved.size > 1:
            a_idx, b_idx = np.triu_indices(moved.size, k=1)
            hit_rows, hit_cols = link_hits(
                new_positions, self._radii, link_rule,
                moved[a_idx], moved[b_idx],
            )
            row_parts.append(hit_rows)
            col_parts.append(hit_cols)
        rows = np.concatenate(row_parts)
        cols = np.concatenate(col_parts)

        ckeep = ~is_moved[self._cov_router]
        new_cov_router, new_cov_client = self._coverage_pairs(
            new_positions, moved.astype(np.intp, copy=False)
        )
        cov_router = np.concatenate([self._cov_router[ckeep], new_cov_router])
        cov_client = np.concatenate([self._cov_client[ckeep], new_cov_client])
        return rows, cols, cov_router, cov_client

    def _sparse_measure(
        self,
        placement: Placement,
        rows: np.ndarray,
        cols: np.ndarray,
        cov_router: np.ndarray,
        cov_client: np.ndarray,
    ) -> Evaluation:
        """Metrics + fitness from edge and coverage-hit arrays."""
        from repro.core.engine.sparse import (
            _measure_from_sparse,
            components_from_edges,
        )

        problem = self._problem
        if self._compiled is not None:
            # Same canonical labels from the union-find kernel; the
            # derived pieces repeat components_from_edges verbatim.
            labels = self._compiled.label_components(problem.n_routers, rows, cols)
            counts = np.bincount(labels, minlength=problem.n_routers)
            giant_label = int(counts.argmax())
            giant_mask = labels == giant_label
        else:
            labels, counts, giant_label, giant_mask = components_from_edges(
                problem.n_routers, rows, cols
            )
        if problem.n_clients == 0:
            covered = 0
        else:
            flags = np.zeros(problem.n_clients, dtype=bool)
            if problem.coverage_rule is CoverageRule.ANY_ROUTER:
                flags[cov_client] = True
            else:
                flags[cov_client[giant_mask[cov_router]]] = True
            covered = int(np.count_nonzero(flags))
        return _measure_from_sparse(
            problem,
            self._fitness,
            placement,
            labels,
            int(rows.size),
            covered,
            giant_mask,
            counts,
            giant_label,
        )
