"""Vectorized connected components for the evaluation engine.

The scalar path labels the router graph with a Python union-find; this
module provides the array-native equivalents the batched and incremental
evaluators run on: min-label propagation over ``np.nonzero`` edge arrays
(single graph or a whole stack of candidate graphs at once).  All label
arrays are *canonical* — each node carries the smallest node id of its
component, exactly like :func:`repro.core.connectivity.canonical_labels`
— so every evaluation path agrees bit-for-bit on components, giant-mask
tie-breaking included.
"""

from __future__ import annotations

import numpy as np

from repro.core.connectivity import (
    ComponentStructure,
    structure_from_canonical_labels,
)

__all__ = [
    "labels_from_edges",
    "labels_from_edge_stack",
    "labels_from_adjacency",
    "batch_labels_from_adjacency",
    "structure_from_labels",
]

try:  # scipy ships in the standard environment but stays optional.
    from scipy.sparse import coo_matrix as _coo_matrix
    from scipy.sparse.csgraph import connected_components as _connected_components
except ImportError:  # pragma: no cover - exercised only without scipy
    _coo_matrix = None
    _connected_components = None

#: Below this node count the propagation kernel beats scipy's sparse
#: construction overhead (measured: ~0.04 ms vs ~0.23 ms at one
#: 128-router graph, parity at ~32k nodes, ~3x the other way on
#: structured multi-chain stacks of ~60k nodes).
_SCIPY_STACK_THRESHOLD = 4096


def labels_from_edges(
    n_nodes: int, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Canonical component labels from parallel edge-endpoint arrays.

    Min-label propagation with pointer jumping: each sweep pushes the
    smaller endpoint label across every edge at once, then compresses
    label chains (``labels = labels[labels]``) until stable.  Converges
    in :math:`O(\\log n)` sweeps on typical graphs, and every sweep is a
    handful of whole-array numpy operations — no per-edge Python loop.
    """
    if n_nodes < 0:
        raise ValueError(f"node count must be non-negative, got {n_nodes}")
    labels = np.arange(n_nodes, dtype=np.intp)
    rows = np.asarray(rows, dtype=np.intp)
    cols = np.asarray(cols, dtype=np.intp)
    if rows.size == 0:
        return labels
    if rows.size and not (
        0 <= int(min(rows.min(), cols.min()))
        and int(max(rows.max(), cols.max())) < n_nodes
    ):
        raise ValueError(f"edge endpoints out of range for {n_nodes} nodes")
    while True:
        np.minimum.at(labels, rows, labels[cols])
        np.minimum.at(labels, cols, labels[rows])
        while True:
            jumped = labels[labels]
            if np.array_equal(jumped, labels):
                break
            labels = jumped
        if np.array_equal(labels[rows], labels[cols]):
            return labels


def labels_from_edge_stack(
    n_nodes: int, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Canonical labels tuned for large block-diagonal edge stacks.

    Same contract and results as :func:`labels_from_edges` — canonical
    smallest-member component labels — but multi-chain phases label tens
    of thousands of stacked nodes at once, where scipy's C
    connected-components (followed by a vectorized canonicalization
    pass) beats min-label propagation by ~3x on structured placement
    graphs.  Small graphs and scipy-less environments fall back to the
    propagation kernel, which wins below sparse-construction overhead.
    """
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    if (
        _connected_components is None
        or n_nodes < _SCIPY_STACK_THRESHOLD
        or rows.size == 0
    ):
        return labels_from_edges(n_nodes, rows, cols)
    # Out-of-range endpoints are rejected by the coo constructor itself,
    # so no separate bounds scan is needed on this hot path.  int32
    # indices halve the sort bandwidth of the csr conversion; stack
    # sizes stay far below 2**31 nodes.
    if n_nodes <= np.iinfo(np.int32).max:
        rows = rows.astype(np.int32, copy=False)
        cols = cols.astype(np.int32, copy=False)
    # float64 data up front: csgraph validation casts to float64 anyway,
    # so this turns its conversion pass into a cheap same-dtype copy.
    matrix = _coo_matrix(
        (np.ones(rows.size, dtype=np.float64), (rows, cols)),
        shape=(n_nodes, n_nodes),
    ).tocsr()
    # Weak connectivity over the one-directional edge list equals
    # undirected connectivity, and skips the symmetrizing transpose that
    # directed=False would pay.
    n_components, component = _connected_components(
        matrix, directed=True, connection="weak"
    )
    # Component ids are discovery-ordered; remap each to its smallest
    # member node id, the canonical labeling every engine path shares.
    canonical = np.full(n_components, n_nodes, dtype=np.intp)
    np.minimum.at(canonical, component, np.arange(n_nodes, dtype=np.intp))
    return canonical[component]


def labels_from_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Canonical component labels of one ``(N, N)`` adjacency matrix."""
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    # Directed duplicates are harmless to label propagation, and a plain
    # nonzero is cheaper than materializing an upper-triangular copy.
    rows, cols = np.nonzero(adjacency)
    return labels_from_edges(adjacency.shape[0], rows, cols)


def batch_labels_from_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Canonical labels for a ``(K, N, N)`` stack of adjacency matrices.

    All candidates are labeled in one propagation pass: candidate ``k``'s
    nodes are offset to ``k * N .. k * N + N - 1``, the per-candidate
    edge sets are concatenated, and the single combined graph is labeled.
    Because no edge crosses candidate blocks, subtracting the block
    offset recovers each candidate's canonical (smallest-member) labels.
    """
    if adjacency.ndim != 3 or adjacency.shape[1] != adjacency.shape[2]:
        raise ValueError(
            f"adjacency must be a (K, N, N) stack, got {adjacency.shape}"
        )
    n_candidates, n_nodes, _ = adjacency.shape
    if n_candidates == 0:
        return np.zeros((0, n_nodes), dtype=np.intp)
    which, rows, cols = np.nonzero(adjacency)
    offset = which.astype(np.intp) * n_nodes
    flat = labels_from_edges(n_candidates * n_nodes, offset + rows, offset + cols)
    labels = flat.reshape(n_candidates, n_nodes)
    labels -= np.arange(n_candidates, dtype=np.intp)[:, np.newaxis] * n_nodes
    return labels


def structure_from_labels(labels: np.ndarray) -> ComponentStructure:
    """Wrap canonical labels into a :class:`ComponentStructure`.

    Thin alias of
    :func:`repro.core.connectivity.structure_from_canonical_labels` so
    the scalar and engine paths share one size-tally implementation.
    """
    return structure_from_canonical_labels(labels)
