"""Core problem model and evaluation engine.

This subpackage implements the paper's problem definition (Section 2) and
every substrate the search methods rely on: geometry, the deployment
grid, the radio model, routers and clients, placements, the router
communication graph with its giant component, user coverage, sub-area
density and the bi-objective fitness.
"""

from repro.core.clients import ClientSet, MeshClient
from repro.core.connectivity import (
    ComponentStructure,
    UnionFind,
    canonical_labels,
    connected_components,
    connected_components_from_arrays,
    giant_component_mask,
)
from repro.core.coverage import coverage_mask, coverage_matrix, covered_clients
from repro.core.density import DensityMap
from repro.core.engine import (
    BatchEvaluator,
    DeltaEvaluator,
    SparseEngine,
    evaluate_batch,
    evaluate_sparse,
    select_engine,
)
from repro.core.evaluation import Evaluation, Evaluator
from repro.core.fitness import (
    FitnessFunction,
    LexicographicFitness,
    NetworkMetrics,
    WeightedSumFitness,
)
from repro.core.geometry import Point, Rect, chebyshev, euclidean, euclidean_squared, manhattan
from repro.core.grid import GridArea
from repro.core.network import RouterNetwork, adjacency_matrix, edge_array, link_edges
from repro.core.pareto import ParetoArchive, ParetoPoint, dominates
from repro.core.problem import ProblemInstance
from repro.core.radio import CoverageRule, LinkRule, RadioProfile
from repro.core.routers import MeshRouter, RouterFleet
from repro.core.solution import Placement

__all__ = [
    "ClientSet",
    "MeshClient",
    "ComponentStructure",
    "UnionFind",
    "canonical_labels",
    "connected_components",
    "connected_components_from_arrays",
    "giant_component_mask",
    "BatchEvaluator",
    "DeltaEvaluator",
    "SparseEngine",
    "evaluate_batch",
    "evaluate_sparse",
    "select_engine",
    "coverage_mask",
    "coverage_matrix",
    "covered_clients",
    "DensityMap",
    "Evaluation",
    "Evaluator",
    "FitnessFunction",
    "LexicographicFitness",
    "NetworkMetrics",
    "WeightedSumFitness",
    "Point",
    "Rect",
    "chebyshev",
    "euclidean",
    "euclidean_squared",
    "manhattan",
    "GridArea",
    "RouterNetwork",
    "adjacency_matrix",
    "edge_array",
    "link_edges",
    "ParetoArchive",
    "ParetoPoint",
    "dominates",
    "ProblemInstance",
    "CoverageRule",
    "LinkRule",
    "RadioProfile",
    "MeshRouter",
    "RouterFleet",
    "Placement",
]
