"""Pareto archive for the bi-objective view of the problem.

The placement problem is intrinsically bi-objective — "maximize network
connectivity ... and client coverage" — and the paper scalarizes it.
Related work the paper cites (Franklin & Murthy's two-tier WMN study)
treats it as a proper bi-objective problem instead.  This archive offers
that view on top of any search in this library: feed it every evaluation
the optimizer produces and it maintains the set of non-dominated
``(giant component, coverage)`` trade-offs seen.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evaluation import Evaluation

__all__ = ["ParetoPoint", "ParetoArchive", "dominates"]


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated trade-off: objectives plus the witness solution."""

    giant_size: int
    covered_clients: int
    evaluation: Evaluation


def dominates(a: "tuple[int, int]", b: "tuple[int, int]") -> bool:
    """Whether objective vector ``a`` Pareto-dominates ``b``.

    Both objectives are maximized; ``a`` dominates when it is at least as
    good in both coordinates and strictly better in at least one.
    """
    return a[0] >= b[0] and a[1] >= b[1] and a != b


class ParetoArchive:
    """The non-dominated front over ``(giant_size, covered_clients)``.

    ``observe`` is O(front size) per call; fronts stay tiny here (both
    objectives are small integers), so the archive adds negligible cost
    to a search.
    """

    def __init__(self) -> None:
        self._points: dict[tuple[int, int], ParetoPoint] = {}
        self._n_observed = 0

    def __len__(self) -> int:
        return len(self._points)

    @property
    def n_observed(self) -> int:
        """How many evaluations have been offered to the archive."""
        return self._n_observed

    def observe(self, evaluation: Evaluation) -> bool:
        """Offer an evaluation; returns ``True`` if the front changed.

        The evaluation enters the archive when no archived point
        dominates it; any archived points it dominates are evicted.
        """
        self._n_observed += 1
        key = (evaluation.giant_size, evaluation.covered_clients)
        if key in self._points:
            return False
        if any(dominates(existing, key) for existing in self._points):
            return False
        evicted = [
            existing for existing in self._points if dominates(key, existing)
        ]
        for existing in evicted:
            del self._points[existing]
        self._points[key] = ParetoPoint(
            giant_size=key[0], covered_clients=key[1], evaluation=evaluation
        )
        return True

    def front(self) -> list[ParetoPoint]:
        """The archived points, sorted by giant size (descending)."""
        return sorted(
            self._points.values(),
            key=lambda point: (-point.giant_size, -point.covered_clients),
        )

    def best_by(self, fitness) -> ParetoPoint:
        """The archived point a scalarization would pick.

        ``fitness`` is a :class:`~repro.core.fitness.FitnessFunction`;
        useful to compare what different weightings would select from the
        same front.
        """
        if not self._points:
            raise ValueError("empty archive")
        return max(
            self._points.values(),
            key=lambda point: fitness.score(point.evaluation.metrics),
        )

    def objective_vectors(self) -> list[tuple[int, int]]:
        """The front's ``(giant, coverage)`` pairs, sorted like front()."""
        return [
            (point.giant_size, point.covered_clients) for point in self.front()
        ]
