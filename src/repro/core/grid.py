"""The deployment grid area.

Section 2 of the paper defines an instance over "an area W x H where to
distribute N mesh routers".  :class:`GridArea` models that area as a
discrete cell grid and provides the spatial queries the placement methods
need: bounds checks, sub-rectangles (diagonal bands, corner zones, central
zones) and uniform sampling of free cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.geometry import Point, Rect

__all__ = ["GridArea"]


@dataclass(frozen=True, slots=True)
class GridArea:
    """A ``width x height`` grid of unit cells.

    The grid is the deployment area of the WMN.  Router positions are
    cells of this grid; clients also sit on cells.  The class is immutable
    and cheap to share between solutions.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(
                f"grid dimensions must be positive, got "
                f"{self.width}x{self.height}"
            )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def n_cells(self) -> int:
        """Total number of cells."""
        return self.width * self.height

    @property
    def bounds(self) -> Rect:
        """The whole grid as a :class:`Rect`."""
        return Rect(0, 0, self.width, self.height)

    @property
    def center(self) -> Point:
        """The central cell."""
        return self.bounds.center

    def contains(self, point: Point) -> bool:
        """Whether ``point`` is a valid cell of this grid."""
        return 0 <= point.x < self.width and 0 <= point.y < self.height

    def require_inside(self, point: Point) -> None:
        """Raise ``ValueError`` if ``point`` is outside the grid."""
        if not self.contains(point):
            raise ValueError(
                f"cell {tuple(point)} outside {self.width}x{self.height} grid"
            )

    def cells(self) -> Iterator[Point]:
        """Iterate every cell in row-major order."""
        return self.bounds.cells()

    def cell_index(self, point: Point) -> int:
        """Row-major linear index of a cell (for array-backed maps)."""
        self.require_inside(point)
        return point.y * self.width + point.x

    def cell_at(self, index: int) -> Point:
        """Inverse of :meth:`cell_index`."""
        if not 0 <= index < self.n_cells:
            raise ValueError(f"cell index {index} out of range")
        return Point(index % self.width, index // self.width)

    # ------------------------------------------------------------------
    # Aspect / applicability checks used by the ad hoc methods
    # ------------------------------------------------------------------

    def is_near_square(self, tolerance: float = 0.10) -> bool:
        """Whether width and height differ by at most ``tolerance``.

        The Diag and Cross placements require "height and width must have
        similar values (we considered the case of 10% difference in their
        values)" (paper, Section 3).
        """
        longer = max(self.width, self.height)
        shorter = min(self.width, self.height)
        return (longer - shorter) <= tolerance * longer

    # ------------------------------------------------------------------
    # Sub-areas
    # ------------------------------------------------------------------

    def central_rect(self, width: int, height: int) -> Rect:
        """A ``width x height`` rectangle centred in the grid.

        Used by the *Near* placement ("a rectangle in the central part of
        the grid area").
        """
        if width > self.width or height > self.height:
            raise ValueError(
                f"central rect {width}x{height} does not fit in "
                f"{self.width}x{self.height} grid"
            )
        x0 = (self.width - width) // 2
        y0 = (self.height - height) // 2
        return Rect(x0, y0, width, height)

    def corner_rects(self, width: int, height: int) -> tuple[Rect, Rect, Rect, Rect]:
        """The four corner rectangles of size ``width x height``.

        Used by the *Corners* placement.  Order: bottom-left, bottom-right,
        top-left, top-right.
        """
        if width > self.width or height > self.height:
            raise ValueError(
                f"corner rect {width}x{height} does not fit in "
                f"{self.width}x{self.height} grid"
            )
        return (
            Rect(0, 0, width, height),
            Rect(self.width - width, 0, width, height),
            Rect(0, self.height - height, width, height),
            Rect(self.width - width, self.height - height, width, height),
        )

    def window_positions(self, window_width: int, window_height: int) -> Iterator[Rect]:
        """All positions of a sliding ``window_width x window_height`` window."""
        if window_width > self.width or window_height > self.height:
            raise ValueError(
                f"window {window_width}x{window_height} larger than grid"
            )
        for y0 in range(self.height - window_height + 1):
            for x0 in range(self.width - window_width + 1):
                yield Rect(x0, y0, window_width, window_height)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def random_cell(self, rng: np.random.Generator) -> Point:
        """A uniformly random cell."""
        return Point(
            int(rng.integers(0, self.width)), int(rng.integers(0, self.height))
        )

    def random_cell_in(self, rect: Rect, rng: np.random.Generator) -> Point:
        """A uniformly random cell inside ``rect`` (clipped to the grid)."""
        clipped = rect.intersection(self.bounds)
        if clipped.area == 0:
            raise ValueError(f"rectangle {rect} has no cells inside the grid")
        return Point(
            int(rng.integers(clipped.x0, clipped.x1)),
            int(rng.integers(clipped.y0, clipped.y1)),
        )

    def random_free_cell(
        self,
        occupied: Iterable[Point],
        rng: np.random.Generator,
        within: Rect | None = None,
    ) -> Point:
        """A uniformly random unoccupied cell, optionally inside ``within``.

        Uses rejection sampling with a fallback to exhaustive enumeration
        so it terminates even when the free cells are scarce.
        """
        region = self.bounds if within is None else within.intersection(self.bounds)
        if region.area == 0:
            raise ValueError("sampling region is empty")
        # Placements pass their cached frozenset; copying it per call is
        # pure overhead on the proposal hot path.
        if isinstance(occupied, (set, frozenset)):
            occupied_set = occupied
        else:
            occupied_set = set(occupied)
        # Rejection sampling is fast when occupancy is sparse (the common
        # case: N routers << W*H cells).
        max_attempts = 64
        for _ in range(max_attempts):
            candidate = self.random_cell_in(region, rng)
            if candidate not in occupied_set:
                return candidate
        free = [cell for cell in region.cells() if cell not in occupied_set]
        if not free:
            raise ValueError("no free cell available in the requested region")
        return free[int(rng.integers(0, len(free)))]

    def sample_distinct_cells(
        self,
        count: int,
        rng: np.random.Generator,
        within: Rect | None = None,
        occupied: Sequence[Point] = (),
    ) -> list[Point]:
        """Sample ``count`` distinct free cells uniformly at random."""
        region = self.bounds if within is None else within.intersection(self.bounds)
        taken = set(occupied)
        available = region.area - sum(1 for cell in taken if region.contains(cell))
        if count > available:
            raise ValueError(
                f"cannot place {count} nodes in a region with only "
                f"{available} free cells"
            )
        chosen: list[Point] = []
        for _ in range(count):
            cell = self.random_free_cell(taken, rng, within=region)
            chosen.append(cell)
            taken.add(cell)
        return chosen
