"""Radio coverage model.

The paper assumes "routers ... having their own radio coverage area,
oscillating between minimum and maximum values" (Abstract, Section 1).
We model that as a per-router coverage *radius* drawn from a configurable
interval; the radius doubles as the router's "power" (HotSpot places "the
most powerful mesh router in the most dense zone"; the swap movement
exchanges the "worst" and "best" routers by radio coverage).

Two routers are joined by a wireless link when they are within radio
range of each other.  Because the paper never pins down the link
predicate, :class:`LinkRule` offers the three standard readings; the
experiment configuration selects one (see DESIGN.md, decision D3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["LinkRule", "CoverageRule", "RadioProfile"]


class LinkRule(enum.Enum):
    """Predicate deciding when two routers share a wireless link.

    Given routers ``i`` and ``j`` at Euclidean distance ``d`` with radii
    ``r_i`` and ``r_j``:

    * ``OVERLAP`` — link iff ``d <= r_i + r_j`` (coverage disks touch).
    * ``BIDIRECTIONAL`` — link iff ``d <= min(r_i, r_j)`` (each router
      lies inside the other's coverage area; both directions work).
    * ``UNIDIRECTIONAL`` — link iff ``d <= max(r_i, r_j)`` (at least one
      direction works).
    """

    OVERLAP = "overlap"
    BIDIRECTIONAL = "bidirectional"
    UNIDIRECTIONAL = "unidirectional"

    def link_range(self, radius_a: float, radius_b: float) -> float:
        """Maximum distance at which two routers with the given radii link."""
        if self is LinkRule.OVERLAP:
            return radius_a + radius_b
        if self is LinkRule.BIDIRECTIONAL:
            return min(radius_a, radius_b)
        return max(radius_a, radius_b)

    def links(self, distance: float, radius_a: float, radius_b: float) -> bool:
        """Whether two routers at ``distance`` link under this rule."""
        return distance <= self.link_range(radius_a, radius_b)

    def range_matrix(self, radii: np.ndarray) -> np.ndarray:
        """Pairwise link-range matrix for a vector of radii.

        Vectorized companion of :meth:`link_range` used by the network
        builder: entry ``(i, j)`` is the maximum distance at which routers
        ``i`` and ``j`` link.
        """
        column = radii[:, np.newaxis]
        row = radii[np.newaxis, :]
        if self is LinkRule.OVERLAP:
            return column + row
        if self is LinkRule.BIDIRECTIONAL:
            return np.minimum(column, row)
        return np.maximum(column, row)

    def range_pairs(self, radii_a: np.ndarray, radii_b: np.ndarray) -> np.ndarray:
        """Elementwise link range for parallel radius arrays.

        Sparse-engine companion of :meth:`range_matrix`: instead of the
        full pairwise matrix, it computes the range of explicitly listed
        candidate pairs.  The arithmetic is the same float operations, so
        the resulting thresholds are bit-identical to the matrix entries.
        """
        if self is LinkRule.OVERLAP:
            return radii_a + radii_b
        if self is LinkRule.BIDIRECTIONAL:
            return np.minimum(radii_a, radii_b)
        return np.maximum(radii_a, radii_b)

    def max_reach(self, radii: np.ndarray) -> float:
        """Upper bound on the link range over any pair from ``radii``.

        The sparse engine sizes its spatial bins from this bound, so it
        must never underestimate: ``OVERLAP`` ranges reach twice the
        largest radius, the min/max rules at most the largest radius.
        """
        if radii.size == 0:
            return 0.0
        largest = float(radii.max())
        return 2.0 * largest if self is LinkRule.OVERLAP else largest


class CoverageRule(enum.Enum):
    """Which routers count towards user coverage.

    * ``GIANT_ONLY`` — a client is covered only by routers belonging to
      the giant component ("the number of mesh client nodes connected to
      the WMN", Section 2).  This is the default.
    * ``ANY_ROUTER`` — any router covers, connected or not.
    """

    GIANT_ONLY = "giant-only"
    ANY_ROUTER = "any-router"


@dataclass(frozen=True, slots=True)
class RadioProfile:
    """The oscillation interval for router coverage radii.

    A fleet created from a profile draws each router's radius uniformly
    from ``[min_radius, max_radius]`` (inclusive) — the paper's
    "oscillating between minimum and maximum values".
    """

    min_radius: float
    max_radius: float

    def __post_init__(self) -> None:
        if self.min_radius <= 0:
            raise ValueError(f"min_radius must be positive, got {self.min_radius}")
        if self.max_radius < self.min_radius:
            raise ValueError(
                f"max_radius ({self.max_radius}) must be >= "
                f"min_radius ({self.min_radius})"
            )

    @property
    def mean_radius(self) -> float:
        """Expected radius of a sampled router."""
        return (self.min_radius + self.max_radius) / 2.0

    def sample_radii(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` radii uniformly from the oscillation interval."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return rng.uniform(self.min_radius, self.max_radius, size=count)
