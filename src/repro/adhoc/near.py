"""Near placement (paper Section 3, method 5).

"In this method mesh routers are concentrated in the central zone of the
grid area.  To apply the method, minimum and maximum (user specified)
values are considered to trace a rectangle in the central part of the
grid area; routers are distributed in the rectangle cells."
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro.adhoc.base import PatternedAdHocMethod
from repro.core.geometry import Point, Rect
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance

__all__ = ["NearPlacement"]


class NearPlacement(PatternedAdHocMethod):
    """Routers uniformly spread inside a central rectangle.

    ``zone_fraction`` sizes the central rectangle relative to the grid
    (0.5 -> half of each dimension); alternatively pass explicit
    ``zone_width`` / ``zone_height`` cell counts — the "user specified
    values" of the paper.
    """

    name: ClassVar[str] = "near"

    def __init__(
        self,
        zone_fraction: float = 0.5,
        zone_width: int | None = None,
        zone_height: int | None = None,
        pattern_fraction: float = 0.9,
        strict: bool = False,
    ) -> None:
        super().__init__(pattern_fraction=pattern_fraction, strict=strict)
        if not 0.0 < zone_fraction <= 1.0:
            raise ValueError(
                f"zone_fraction must be in (0, 1], got {zone_fraction}"
            )
        if zone_width is not None and zone_width <= 0:
            raise ValueError(f"zone_width must be positive, got {zone_width}")
        if zone_height is not None and zone_height <= 0:
            raise ValueError(f"zone_height must be positive, got {zone_height}")
        self.zone_fraction = zone_fraction
        self.zone_width = zone_width
        self.zone_height = zone_height

    def central_zone(self, grid: GridArea) -> Rect:
        """The central rectangle the pattern fills on the given grid."""
        width = (
            self.zone_width
            if self.zone_width is not None
            else max(1, int(round(grid.width * self.zone_fraction)))
        )
        height = (
            self.zone_height
            if self.zone_height is not None
            else max(1, int(round(grid.height * self.zone_fraction)))
        )
        return grid.central_rect(min(width, grid.width), min(height, grid.height))

    def pattern_cells(
        self, problem: ProblemInstance, count: int, rng: np.random.Generator
    ) -> list[Point]:
        grid = problem.grid
        zone = self.central_zone(grid)
        if zone.area >= count:
            return grid.sample_distinct_cells(count, rng, within=zone)
        # Zone smaller than the pattern share: fill the zone completely,
        # the base class nudges the surplus outwards.
        cells = list(zone.cells())
        while len(cells) < count:
            cells.append(zone.center)
        return cells[:count]
