"""HotSpot placement (paper Section 3, method 7).

"This method starts by placing the most powerful mesh router in the most
dense zone (in terms of client nodes) of the grid area; next, the second
most powerful mesh router is placed in the second most dense zone, and
so on until all routers are placed. ... this method has a greater
computational cost as compared to other methods due to the computation
of denseness property."

Unlike the pattern methods, HotSpot is *client-aware* and *power-aware*:
the mapping of specific routers to specific cells matters, so it
implements :meth:`place` directly rather than going through
:class:`~repro.adhoc.base.PatternedAdHocMethod`.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro.adhoc.base import AdHocMethod, nudge_to_free
from repro.core.density import DensityMap
from repro.core.geometry import Point
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance
from repro.core.solution import Placement

__all__ = ["HotSpotPlacement"]


class HotSpotPlacement(AdHocMethod):
    """Power-ranked routers into client-density-ranked zones.

    Zones are the non-overlapping densest windows of the client density
    map (window size ``window_fraction`` of each grid dimension, or
    explicit ``window_width`` / ``window_height``).  When the grid yields
    fewer distinct zones than routers, assignment cycles through the
    zones, spreading extra routers within each zone.
    """

    name: ClassVar[str] = "hotspot"

    def __init__(
        self,
        window_fraction: float = 0.0625,
        window_width: int | None = None,
        window_height: int | None = None,
        mass_fraction: float = 0.8,
    ) -> None:
        if not 0.0 < window_fraction <= 1.0:
            raise ValueError(
                f"window_fraction must be in (0, 1], got {window_fraction}"
            )
        if window_width is not None and window_width <= 0:
            raise ValueError(f"window_width must be positive, got {window_width}")
        if window_height is not None and window_height <= 0:
            raise ValueError(f"window_height must be positive, got {window_height}")
        if not 0.0 < mass_fraction <= 1.0:
            raise ValueError(
                f"mass_fraction must be in (0, 1], got {mass_fraction}"
            )
        self.window_fraction = window_fraction
        self.window_width = window_width
        self.window_height = window_height
        self.mass_fraction = mass_fraction

    def window_size(self, grid: GridArea) -> tuple[int, int]:
        """Effective ``(width, height)`` of a density window."""
        width = (
            self.window_width
            if self.window_width is not None
            else max(1, int(round(grid.width * self.window_fraction)))
        )
        height = (
            self.window_height
            if self.window_height is not None
            else max(1, int(round(grid.height * self.window_fraction)))
        )
        return min(width, grid.width), min(height, grid.height)

    def place(self, problem: ProblemInstance, rng: np.random.Generator) -> Placement:
        grid = problem.grid
        n = problem.n_routers
        window_width, window_height = self.window_size(grid)
        density = DensityMap.build(
            grid, problem.clients.positions, window_width, window_height
        )
        zones = self._client_zones(density, n, self.mass_fraction)
        quotas = self._zone_quotas(density, zones, n)

        cells: dict[int, Point] = {}
        taken: set[Point] = set()
        ranked_routers = problem.fleet.by_power_descending()
        rank = 0
        for zone, quota in zip(zones, quotas):
            for slot in range(quota):
                router = ranked_routers[rank]
                rank += 1
                # First router in a zone sits at the zone's heart; extras
                # spread randomly within it.
                anchor = zone.center if slot == 0 else grid.random_cell_in(zone, rng)
                cell = nudge_to_free(grid, anchor, taken, rng)
                taken.add(cell)
                cells[router.router_id] = cell
        return Placement.from_cells(grid, [cells[i] for i in range(n)])

    @staticmethod
    def _client_zones(density: DensityMap, n: int, mass_fraction: float) -> list:
        """The distinct dense zones worth occupying.

        A *hotspot* is a window contributing to the bulk of the client
        mass: zones are taken in density order until ``mass_fraction`` of
        the clients captured by any window is covered.  This keeps
        heavy-tailed distributions (Exponential, Weibull) from scattering
        routers one-by-one onto straggler clients — a window holding one
        outlier is not a "dense zone" of the distribution.  Windows with
        no clients never qualify.
        """
        ranked = density.ranked_windows(n, densest=True, min_overlap_free=True)
        counted = [
            (zone, density.count_in(zone))
            for zone in ranked
            if density.count_in(zone) > 0
        ]
        if not counted:
            return [density.densest_window()]
        total = sum(count for _, count in counted)
        zones = []
        captured = 0
        for zone, count in counted:
            zones.append(zone)
            captured += count
            if captured >= mass_fraction * total:
                break
        return zones

    @staticmethod
    def _zone_quotas(density: DensityMap, zones: list, n: int) -> list[int]:
        """How many routers each zone receives (>= 1, density-weighted).

        The paper assigns "the most powerful router to the most dense
        zone, the second most powerful to the second most dense zone, and
        so on".  With fewer distinct zones than routers the ordering is
        continued proportionally: a zone holding twice the clients
        receives twice the routers (largest-remainder rounding), so the
        strongest share of the fleet serves the densest hotspots.
        """
        counts = np.array([density.count_in(zone) for zone in zones], dtype=float)
        if len(zones) >= n:
            return [1] * n
        if counts.sum() <= 0:
            # Clientless instance: the fallback zone(s) share the fleet
            # evenly.
            base = n // len(zones)
            quotas = [base] * len(zones)
            for index in range(n - base * len(zones)):
                quotas[index] += 1
            return quotas
        weights = counts / counts.sum()
        raw = weights * (n - len(zones))
        quotas = np.ones(len(zones), dtype=int) + np.floor(raw).astype(int)
        remainder = n - int(quotas.sum())
        # Largest fractional remainders (ties towards denser zones, which
        # come first in ``zones``) absorb the leftover routers.
        order = np.argsort(-(raw - np.floor(raw)), kind="stable")
        for index in order[:remainder]:
            quotas[index] += 1
        return [int(quota) for quota in quotas]

    def __repr__(self) -> str:
        return (
            f"HotSpotPlacement(window_fraction={self.window_fraction}, "
            f"window_width={self.window_width}, "
            f"window_height={self.window_height})"
        )
