"""The seven ad hoc placement methods (paper Section 3).

Random, ColLeft, Diag, Cross, Near, Corners and HotSpot — fast topology
heuristics used stand-alone and as initializers for the genetic
algorithm and the neighborhood search.
"""

from repro.adhoc.base import (
    AdHocMethod,
    MethodNotApplicableError,
    PatternedAdHocMethod,
    nudge_to_free,
    resolve_collisions,
)
from repro.adhoc.colleft import ColLeftPlacement
from repro.adhoc.corners import CornersPlacement
from repro.adhoc.cross import CrossPlacement
from repro.adhoc.diag import DiagPlacement
from repro.adhoc.hotspot import HotSpotPlacement
from repro.adhoc.near import NearPlacement
from repro.adhoc.random_placement import RandomPlacement
from repro.adhoc.registry import (
    PAPER_METHOD_ORDER,
    available_methods,
    make_method,
    paper_methods,
    register_method,
)

__all__ = [
    "AdHocMethod",
    "MethodNotApplicableError",
    "PatternedAdHocMethod",
    "nudge_to_free",
    "resolve_collisions",
    "ColLeftPlacement",
    "CornersPlacement",
    "CrossPlacement",
    "DiagPlacement",
    "HotSpotPlacement",
    "NearPlacement",
    "RandomPlacement",
    "PAPER_METHOD_ORDER",
    "available_methods",
    "make_method",
    "paper_methods",
    "register_method",
]
