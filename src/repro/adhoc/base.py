"""Framework for the ad hoc placement methods (paper Section 3).

Ad hoc methods "are simple methods that explore different possible
placement topologies", useful both stand-alone and as initializers of
evolutionary algorithms.  The paper notes that "in all considered
methods, there is a pattern in placement of mesh router nodes, meaning
that *most* of the node placements follow the pattern" — modeled here by
``pattern_fraction``: that share of the fleet is placed by the method's
pattern, the remainder uniformly at random.

:class:`PatternedAdHocMethod` implements the shared machinery (pattern /
filler split, collision nudging, bounds enforcement); concrete methods
only produce their pattern cells.  HotSpot, which must additionally
assign *specific* routers (by power) to specific zones, overrides
:meth:`AdHocMethod.place` directly.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Iterable, Sequence

import numpy as np

from repro.core.geometry import Point
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance
from repro.core.solution import Placement

__all__ = [
    "AdHocMethod",
    "PatternedAdHocMethod",
    "MethodNotApplicableError",
    "nudge_to_free",
    "resolve_collisions",
]


class MethodNotApplicableError(ValueError):
    """Raised when a method's applicability conditions are violated.

    Several ad hoc methods come with conditions on the grid ("height and
    width must have similar values" for Diag/Cross); in strict mode these
    raise instead of silently producing a degenerate pattern.
    """


def nudge_to_free(
    grid: GridArea,
    cell: Point,
    taken: set[Point],
    rng: np.random.Generator,
    max_radius: int | None = None,
) -> Point:
    """The nearest free cell to ``cell`` (Chebyshev rings, random ties).

    Pattern anchors of different routers can coincide (short diagonals,
    small corner zones); the colliding router is nudged to the closest
    free cell so the pattern stays visually intact.
    """
    start = grid.bounds.clamped(cell)
    if start not in taken:
        return start
    limit = max_radius if max_radius is not None else max(grid.width, grid.height)
    for radius in range(1, limit + 1):
        ring: list[Point] = []
        for dx in range(-radius, radius + 1):
            for dy in (-radius, radius):
                candidate = Point(start.x + dx, start.y + dy)
                if grid.contains(candidate) and candidate not in taken:
                    ring.append(candidate)
        for dy in range(-radius + 1, radius):
            for dx in (-radius, radius):
                candidate = Point(start.x + dx, start.y + dy)
                if grid.contains(candidate) and candidate not in taken:
                    ring.append(candidate)
        if ring:
            return ring[int(rng.integers(0, len(ring)))]
    raise ValueError("no free cell available on the grid")


def resolve_collisions(
    grid: GridArea,
    cells: Iterable[Point],
    rng: np.random.Generator,
    taken: Sequence[Point] = (),
) -> list[Point]:
    """Make ``cells`` distinct (and distinct from ``taken``) by nudging."""
    occupied = set(taken)
    resolved: list[Point] = []
    for cell in cells:
        placed = nudge_to_free(grid, cell, occupied, rng)
        occupied.add(placed)
        resolved.append(placed)
    return resolved


class AdHocMethod(abc.ABC):
    """A placement heuristic: problem instance -> full placement."""

    #: Registry name of the method (e.g. ``"hotspot"``).
    name: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def place(self, problem: ProblemInstance, rng: np.random.Generator) -> Placement:
        """Produce a placement of the whole fleet."""

    def is_applicable(self, grid: GridArea) -> bool:
        """Whether the method's grid-shape conditions hold (default: yes)."""
        return True

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PatternedAdHocMethod(AdHocMethod):
    """Shared engine for the pattern-based methods.

    Subclasses yield ``count`` pattern cells; this base class nudges
    collisions apart, places the remaining ``(1 - pattern_fraction)``
    share of the fleet uniformly at random and assembles the final
    :class:`Placement`.
    """

    def __init__(self, pattern_fraction: float = 0.9, strict: bool = False) -> None:
        if not 0.0 < pattern_fraction <= 1.0:
            raise ValueError(
                f"pattern_fraction must be in (0, 1], got {pattern_fraction}"
            )
        self.pattern_fraction = pattern_fraction
        self.strict = strict

    @abc.abstractmethod
    def pattern_cells(
        self, problem: ProblemInstance, count: int, rng: np.random.Generator
    ) -> list[Point]:
        """``count`` cells following the method's topology pattern.

        Cells may collide or leave the grid; the caller cleans up.
        """

    def place(self, problem: ProblemInstance, rng: np.random.Generator) -> Placement:
        if self.strict and not self.is_applicable(problem.grid):
            raise MethodNotApplicableError(
                f"{self.name} placement is not applicable to a "
                f"{problem.grid.width}x{problem.grid.height} grid"
            )
        n = problem.n_routers
        n_pattern = max(1, int(round(self.pattern_fraction * n)))
        n_pattern = min(n, n_pattern)
        raw = self.pattern_cells(problem, n_pattern, rng)
        if len(raw) != n_pattern:
            raise ValueError(
                f"{type(self).__name__} produced {len(raw)} pattern cells, "
                f"expected {n_pattern}"
            )
        cells = resolve_collisions(problem.grid, raw, rng)
        n_filler = n - n_pattern
        if n_filler > 0:
            cells.extend(
                problem.grid.sample_distinct_cells(n_filler, rng, occupied=cells)
            )
        return Placement.from_cells(problem.grid, cells)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(pattern_fraction={self.pattern_fraction}, "
            f"strict={self.strict})"
        )
