"""ColLeft placement (paper Section 3, method 2).

"This method places almost all mesh routers at the left side of the grid
area. ... The method is usually applicable when the number of mesh
routers is (proportionally) smaller than grid area height, for instance,
one third of the height."

Pattern routers are spread evenly down a narrow band of left-most
columns; the even vertical spacing is what makes this a *pattern* rather
than a uniform draw over the band.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro.adhoc.base import PatternedAdHocMethod
from repro.core.geometry import Point
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance

__all__ = ["ColLeftPlacement"]


class ColLeftPlacement(PatternedAdHocMethod):
    """Routers stacked along the left edge of the grid.

    ``band_width`` is the number of left-most columns used by the
    pattern; ``None`` derives a narrow band from the grid width
    (1/32nd, at least one column).
    """

    name: ClassVar[str] = "colleft"

    def __init__(
        self,
        band_width: int | None = None,
        pattern_fraction: float = 0.9,
        strict: bool = False,
    ) -> None:
        super().__init__(pattern_fraction=pattern_fraction, strict=strict)
        if band_width is not None and band_width <= 0:
            raise ValueError(f"band_width must be positive, got {band_width}")
        self.band_width = band_width

    def effective_band_width(self, grid: GridArea) -> int:
        """Columns used by the pattern on the given grid."""
        if self.band_width is not None:
            return min(self.band_width, grid.width)
        return max(1, grid.width // 32)

    def is_applicable(self, grid: GridArea) -> bool:
        """Paper condition: router count at most ~height (see class doc).

        The condition involves the fleet, which ``is_applicable`` cannot
        see; the grid-only check verifies a band exists at all.
        """
        return grid.width >= 1

    def pattern_cells(
        self, problem: ProblemInstance, count: int, rng: np.random.Generator
    ) -> list[Point]:
        grid = problem.grid
        band = self.effective_band_width(grid)
        cells: list[Point] = []
        for index in range(count):
            # Even vertical spacing; round-robin across the band columns.
            y = int(round((index + 0.5) * grid.height / count))
            y = min(grid.height - 1, max(0, y))
            x = index % band
            cells.append(Point(x, y))
        return cells
