"""Corners placement (paper Section 3, method 6).

"This method distributes the mesh routers in the corners of the grid
area.  The considered areas in the corners are fixed by user specified
parameter values."

Pattern routers are dealt round-robin to the four corner zones and
placed uniformly inside each zone.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro.adhoc.base import PatternedAdHocMethod
from repro.core.geometry import Point, Rect
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance

__all__ = ["CornersPlacement"]


class CornersPlacement(PatternedAdHocMethod):
    """Routers clustered in the four corner zones.

    ``zone_fraction`` sizes each corner zone relative to the grid
    (0.125 -> an eighth of each dimension); explicit ``zone_width`` /
    ``zone_height`` override it — the paper's "user specified parameter
    values".
    """

    name: ClassVar[str] = "corners"

    def __init__(
        self,
        zone_fraction: float = 0.125,
        zone_width: int | None = None,
        zone_height: int | None = None,
        pattern_fraction: float = 0.9,
        strict: bool = False,
    ) -> None:
        super().__init__(pattern_fraction=pattern_fraction, strict=strict)
        if not 0.0 < zone_fraction <= 0.5:
            raise ValueError(
                f"zone_fraction must be in (0, 0.5], got {zone_fraction}"
            )
        if zone_width is not None and zone_width <= 0:
            raise ValueError(f"zone_width must be positive, got {zone_width}")
        if zone_height is not None and zone_height <= 0:
            raise ValueError(f"zone_height must be positive, got {zone_height}")
        self.zone_fraction = zone_fraction
        self.zone_width = zone_width
        self.zone_height = zone_height

    def corner_zones(self, grid: GridArea) -> tuple[Rect, Rect, Rect, Rect]:
        """The four corner rectangles on the given grid."""
        width = (
            self.zone_width
            if self.zone_width is not None
            else max(1, int(round(grid.width * self.zone_fraction)))
        )
        height = (
            self.zone_height
            if self.zone_height is not None
            else max(1, int(round(grid.height * self.zone_fraction)))
        )
        return grid.corner_rects(min(width, grid.width), min(height, grid.height))

    def pattern_cells(
        self, problem: ProblemInstance, count: int, rng: np.random.Generator
    ) -> list[Point]:
        grid = problem.grid
        zones = self.corner_zones(grid)
        taken: set[Point] = set()
        cells: list[Point] = []
        for index in range(count):
            zone = zones[index % len(zones)]
            # Sample inside the zone, tolerating a full zone by falling
            # back to the zone itself and letting the base class nudge.
            try:
                cell = grid.random_free_cell(taken, rng, within=zone)
            except ValueError:
                cell = zone.center
            taken.add(cell)
            cells.append(cell)
        return cells
