"""Diagonal placement (paper Section 3, method 3).

"Mesh routers are concentrated along the (main) diagonal of the grid
area. ... this method is appropriate when the grid area fulfils some
conditions such as the height and width must have similar values (we
considered the case of 10% difference in their values)."
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro.adhoc.base import PatternedAdHocMethod
from repro.core.geometry import Point
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance

__all__ = ["DiagPlacement"]


class DiagPlacement(PatternedAdHocMethod):
    """Routers evenly spaced along the main diagonal.

    ``jitter`` spreads pattern routers up to that many cells
    perpendicular to the diagonal, producing a diagonal *band* rather
    than a perfect line (0 keeps the exact diagonal).
    """

    name: ClassVar[str] = "diag"

    def __init__(
        self,
        jitter: int = 0,
        pattern_fraction: float = 0.9,
        strict: bool = False,
    ) -> None:
        super().__init__(pattern_fraction=pattern_fraction, strict=strict)
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        self.jitter = jitter

    def is_applicable(self, grid: GridArea) -> bool:
        """Width and height within 10% of each other (paper condition)."""
        return grid.is_near_square(tolerance=0.10)

    def pattern_cells(
        self, problem: ProblemInstance, count: int, rng: np.random.Generator
    ) -> list[Point]:
        grid = problem.grid
        cells: list[Point] = []
        for index in range(count):
            fraction = (index + 0.5) / count
            x = int(fraction * (grid.width - 1))
            y = int(fraction * (grid.height - 1))
            if self.jitter > 0:
                x += int(rng.integers(-self.jitter, self.jitter + 1))
                y += int(rng.integers(-self.jitter, self.jitter + 1))
            cells.append(Point(x, y))
        return cells
