"""Name-based lookup of ad hoc methods.

The experiment harness iterates "the seven ad hoc methods" in the
paper's order; :func:`paper_methods` returns exactly that list, and
:func:`make_method` resolves individual names for the CLI.
"""

from __future__ import annotations

from typing import Callable

from repro.adhoc.base import AdHocMethod
from repro.adhoc.colleft import ColLeftPlacement
from repro.adhoc.corners import CornersPlacement
from repro.adhoc.cross import CrossPlacement
from repro.adhoc.diag import DiagPlacement
from repro.adhoc.hotspot import HotSpotPlacement
from repro.adhoc.near import NearPlacement
from repro.adhoc.random_placement import RandomPlacement

__all__ = [
    "PAPER_METHOD_ORDER",
    "available_methods",
    "make_method",
    "paper_methods",
    "register_method",
]

#: The paper's presentation order (Section 3, Tables 1-3).
PAPER_METHOD_ORDER: tuple[str, ...] = (
    "random",
    "colleft",
    "diag",
    "cross",
    "near",
    "corners",
    "hotspot",
)

_FACTORIES: dict[str, Callable[..., AdHocMethod]] = {
    RandomPlacement.name: RandomPlacement,
    ColLeftPlacement.name: ColLeftPlacement,
    DiagPlacement.name: DiagPlacement,
    CrossPlacement.name: CrossPlacement,
    NearPlacement.name: NearPlacement,
    CornersPlacement.name: CornersPlacement,
    HotSpotPlacement.name: HotSpotPlacement,
}


def available_methods() -> list[str]:
    """Names of all registered ad hoc methods, sorted."""
    return sorted(_FACTORIES)


def register_method(name: str, factory: Callable[..., AdHocMethod]) -> None:
    """Register a custom ad hoc method under ``name``."""
    if name in _FACTORIES:
        raise ValueError(f"ad hoc method {name!r} is already registered")
    _FACTORIES[name] = factory


def make_method(name: str, **parameters) -> AdHocMethod:
    """Instantiate the ad hoc method registered under ``name``."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(available_methods())
        raise ValueError(f"unknown ad hoc method {name!r}; known: {known}") from None
    return factory(**parameters)


def paper_methods() -> list[AdHocMethod]:
    """The seven methods with default parameters, in the paper's order."""
    return [make_method(name) for name in PAPER_METHOD_ORDER]
