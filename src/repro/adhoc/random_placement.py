"""Random placement (paper Section 3, method 1).

"Mesh router nodes are uniformly at random distributed in the grid
area."  The baseline every other method is judged against, and the
classic initializer the paper argues ad hoc methods improve upon.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro.adhoc.base import AdHocMethod
from repro.core.problem import ProblemInstance
from repro.core.solution import Placement

__all__ = ["RandomPlacement"]


class RandomPlacement(AdHocMethod):
    """Uniformly random distinct cells for every router."""

    name: ClassVar[str] = "random"

    def place(self, problem: ProblemInstance, rng: np.random.Generator) -> Placement:
        return Placement.random(problem.grid, problem.n_routers, rng)
