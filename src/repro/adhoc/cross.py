"""Cross placement (paper Section 3, method 4).

"This method tends to place mesh routers along both diagonals of the
grid area.  Similar conditions as the ones for Diagonal placement are
required to ensure applicability of the method."

Pattern routers alternate between the main diagonal (top-left to
bottom-right in matrix terms) and the anti-diagonal, forming an X across
the deployment area.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro.adhoc.base import PatternedAdHocMethod
from repro.core.geometry import Point
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance

__all__ = ["CrossPlacement"]


class CrossPlacement(PatternedAdHocMethod):
    """Routers along both diagonals of the grid.

    ``jitter`` works as in :class:`~repro.adhoc.diag.DiagPlacement`.
    """

    name: ClassVar[str] = "cross"

    def __init__(
        self,
        jitter: int = 0,
        pattern_fraction: float = 0.9,
        strict: bool = False,
    ) -> None:
        super().__init__(pattern_fraction=pattern_fraction, strict=strict)
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        self.jitter = jitter

    def is_applicable(self, grid: GridArea) -> bool:
        """Width and height within 10% of each other (paper condition)."""
        return grid.is_near_square(tolerance=0.10)

    def pattern_cells(
        self, problem: ProblemInstance, count: int, rng: np.random.Generator
    ) -> list[Point]:
        grid = problem.grid
        n_main = (count + 1) // 2
        n_anti = count - n_main
        cells: list[Point] = []
        for index in range(n_main):
            fraction = (index + 0.5) / n_main
            cells.append(
                Point(
                    int(fraction * (grid.width - 1)),
                    int(fraction * (grid.height - 1)),
                )
            )
        for index in range(n_anti):
            fraction = (index + 0.5) / n_anti
            cells.append(
                Point(
                    int(fraction * (grid.width - 1)),
                    int((1.0 - fraction) * (grid.height - 1)),
                )
            )
        if self.jitter > 0:
            cells = [
                Point(
                    cell.x + int(rng.integers(-self.jitter, self.jitter + 1)),
                    cell.y + int(rng.integers(-self.jitter, self.jitter + 1)),
                )
                for cell in cells
            ]
        return cells
