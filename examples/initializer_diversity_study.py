"""Why ad hoc initializers help a GA: quality vs diversity.

Section 5 of the paper argues that ad hoc methods make better GA
initializers than pure random generation because "the diversity of the
population ... is a crucial factor to avoid premature convergence" while
good initial quality speeds up the search.  This study quantifies both:
for every ad hoc method we create an initial population and measure its
mean fitness (quality) and mean pairwise chromosome distance
(diversity), then correlate with the GA outcome after a short budget.

Run:
    python examples/initializer_diversity_study.py
"""

from __future__ import annotations

import numpy as np

from repro import envgates

#: ``REPRO_EXAMPLES_SMOKE=1`` (set by the CI examples job) shrinks the
#: effort knobs so every example still exercises its whole pipeline but
#: finishes in seconds.
SMOKE = envgates.examples_smoke()

from repro import (
    AdHocInitializer,
    Evaluator,
    GAConfig,
    GeneticAlgorithm,
    paper_methods,
    tiny_spec,
)
from repro.genetic.population import Population


def main() -> None:
    spec = tiny_spec("normal", seed=11)
    problem = spec.generate()
    print(f"instance: {spec.describe()}")
    print()
    print(
        f"{'initializer':11s} {'mean fitness':>13s} {'diversity':>10s} "
        f"{'GA giant':>9s} {'GA coverage':>12s}"
    )

    population_size = 8 if SMOKE else 16
    for method in paper_methods():
        initializer = AdHocInitializer(method)
        rng = np.random.default_rng(23)
        evaluator = Evaluator(problem)

        # Initial population statistics.
        population = Population.from_placements(
            initializer.generate(problem, population_size, rng)
        )
        population.evaluate_all(evaluator)
        quality = population.mean_fitness()
        diversity = population.diversity()

        # Short GA run from the same initializer.
        ga = GeneticAlgorithm(
            GAConfig(
                population_size=population_size,
                n_generations=4 if SMOKE else 30,
            )
        )
        result = ga.run(
            Evaluator(problem), initializer, np.random.default_rng(23)
        )

        print(
            f"{method.name:11s} {quality:13.4f} {diversity:10.2f} "
            f"{result.giant_size:6d}/{problem.n_routers:<2d} "
            f"{result.covered_clients:8d}/{problem.n_clients:<3d}"
        )

    print()
    print(
        "Reading: higher initial quality accelerates early generations;\n"
        "higher diversity protects against premature convergence. The\n"
        "paper's HotSpot combines client-aware quality with enough\n"
        "in-zone randomness to stay diverse."
    )


if __name__ == "__main__":
    main()
