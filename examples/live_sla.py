"""Live re-optimization of a city district under latency SLAs.

A deployed WMN does not hold still: clients drift block to block and
the operator's controller must keep the mesh near-optimal *continuously*
— every perturbation event needs a response within a latency SLA, even
when events arrive faster than a full re-optimization takes.

This example drives :class:`repro.anytime.LiveRunner` through three
regimes on one drifting-client scenario:

1. **No pressure** — a generous SLA: every event gets the full search,
   and the run is bit-identical to the offline ``ScenarioRunner`` walk.
2. **Tight SLA** — events arrive faster than a full solve: deadlines
   truncate solves mid-search (keeping the tracked best) and the
   degradation ladder shrinks effort to keep latency bounded.
3. **Saturation** — arrivals overwhelm the solver: the ladder's top
   rung skips to the latest event, coalescing the missed perturbations
   into one warm start instead of queueing without bound.

Run:
    python examples/live_sla.py
"""

from __future__ import annotations

from repro import envgates

#: ``REPRO_EXAMPLES_SMOKE=1`` (set by the CI examples job) shrinks the
#: effort knobs so the example still exercises its whole pipeline but
#: finishes in seconds.
SMOKE = envgates.examples_smoke()

from repro.anytime import LiveRunner
from repro.instances import tiny_spec
from repro.instances.catalog import paper_normal
from repro.scenario import Scenario, ScenarioRunner
from repro.viz import render_live_report

SEED = 42
STEPS = 4 if SMOKE else 12
BUDGET = 4 if SMOKE else 32
CANDIDATES = 6 if SMOKE else 16
#: Simulated cost per evaluation (seconds) — the whole example runs on
#: a deterministic simulated clock, so its output never flakes.
COST = 0.002


def build_scenario() -> Scenario:
    problem = (tiny_spec() if SMOKE else paper_normal()).generate()
    return Scenario.client_drift(problem, STEPS, sigma=2.0)


def main() -> None:
    scenario = build_scenario()

    # The offline reference: no deadlines, every step fully solved.
    baseline = ScenarioRunner(
        "search:swap", budget=BUDGET, n_candidates=CANDIDATES
    ).run(scenario, seed=SEED)

    print("=" * 72)
    print("1) no pressure — generous SLA, bit-identical to the offline walk")
    print("=" * 72)
    relaxed = LiveRunner(
        "search:swap", budget=BUDGET, n_candidates=CANDIDATES,
        sla=1e6, interval=1e6, seconds_per_evaluation=COST,
    ).run(scenario, seed=SEED)
    identical = all(
        event.result.best.fitness == step.result.best.fitness
        for event, step in zip(relaxed.responded, baseline.steps)
    )
    print(render_live_report(relaxed, baseline=baseline))
    print(f"matches the offline walk step for step: {identical}\n")

    print("=" * 72)
    print("2) tight SLA — deadline-truncated solves, degraded rungs")
    print("=" * 72)
    full_solve = BUDGET * CANDIDATES * COST   # cost of an unbounded step
    tight = LiveRunner(
        "search:swap", budget=BUDGET, n_candidates=CANDIDATES,
        sla=0.6 * full_solve, interval=0.5 * full_solve,
        seconds_per_evaluation=COST,
    ).run(scenario, seed=SEED)
    print(render_live_report(tight, baseline=baseline))
    print()

    print("=" * 72)
    print("3) saturation — overload shedding and event coalescing")
    print("=" * 72)
    swamped = LiveRunner(
        "search:swap", budget=BUDGET, n_candidates=CANDIDATES,
        sla=0.15 * full_solve, interval=0.05 * full_solve,
        seconds_per_evaluation=COST,
    ).run(scenario, seed=SEED)
    print(render_live_report(swamped, baseline=baseline))
    print(
        f"\nshed {swamped.shed_count} of {len(swamped.events)} events to "
        f"stay responsive; every response still a valid evaluated "
        f"deployment."
    )


if __name__ == "__main__":
    main()
