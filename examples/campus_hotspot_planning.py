"""Campus Wi-Fi mesh planning with hotspot-clustered users.

Scenario from the paper's motivation: "studies in real urban areas or
university campuses [show] that users (client mesh nodes) tend to
cluster to hotspots".  We model a campus as a 96x96 grid whose 150
users follow a Weibull law (strong clustering around the main quad),
then compare every ad hoc placement method and refine the winner with
neighborhood search.

Run:
    python examples/campus_hotspot_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import envgates

#: ``REPRO_EXAMPLES_SMOKE=1`` (set by the CI examples job) shrinks the
#: effort knobs so every example still exercises its whole pipeline but
#: finishes in seconds.
SMOKE = envgates.examples_smoke()

from repro import (
    Evaluator,
    InstanceSpec,
    NeighborhoodSearch,
    SwapMovement,
    WeightedSumFitness,
    paper_methods,
    render_evaluation,
)


def build_campus() -> InstanceSpec:
    """A campus-sized instance with Weibull-clustered users."""
    return InstanceSpec(
        name="campus",
        width=96,
        height=96,
        n_routers=40,
        n_clients=150,
        distribution="weibull",
        distribution_params={"shape": 1.1},
        min_radius=2.0,
        max_radius=8.0,
        seed=42,
    )


def main() -> None:
    spec = build_campus()
    problem = spec.generate()
    print(f"campus instance: {spec.describe()}")
    print()

    # 1. Survey: run every ad hoc method and rank by fitness.  Campus
    #    planning cares about reaching users, so coverage weighs as much
    #    as connectivity here (the library default is 0.7/0.3).
    evaluator = Evaluator(problem, WeightedSumFitness(0.5, 0.5))
    survey = []
    for method in paper_methods():
        rng = np.random.default_rng(7)
        evaluation = evaluator.evaluate(method.place(problem, rng))
        survey.append((method.name, evaluation))
    survey.sort(key=lambda item: item[1].fitness, reverse=True)

    print(f"{'method':10s} {'giant':>7s} {'coverage':>9s} {'fitness':>9s}")
    for name, evaluation in survey:
        print(
            f"{name:10s} {evaluation.giant_size:3d}/{problem.n_routers:<3d} "
            f"{evaluation.covered_clients:4d}/{problem.n_clients:<4d} "
            f"{evaluation.fitness:9.4f}"
        )
    best_name, best_eval = survey[0]
    print(f"\nbest ad hoc method: {best_name}")
    print()

    # 2. Refine the survey winner with swap-movement neighborhood search.
    rng = np.random.default_rng(7)
    search = NeighborhoodSearch(
        SwapMovement(),
        n_candidates=8 if SMOKE else 32,
        max_phases=6 if SMOKE else 40,
        stall_phases=None,
    )
    refined = search.run(evaluator, best_eval.placement, rng)
    print(f"after refinement: {refined.best.summary()}")
    gained = refined.best.covered_clients - best_eval.covered_clients
    print(f"coverage gained by local search: {gained:+d} clients")
    print()
    print(render_evaluation(problem, refined.best, max_width=48, max_height=24))


if __name__ == "__main__":
    main()
