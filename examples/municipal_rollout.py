"""Municipal WMN rollout: GA planning across districts.

The paper's intro lists "municipal wireless mesh networks" as a driving
application.  A town deploys one mesh per district; districts differ in
how residents are spread (old town packs against the river = exponential;
suburbs are uniform; the centre is a normal cluster).  For each district
we pick the best GA initializer and report the final plan, mirroring the
paper's Tables 1-3 workflow end to end.

Run:
    python examples/municipal_rollout.py
"""

from __future__ import annotations

import numpy as np

from repro import envgates

#: ``REPRO_EXAMPLES_SMOKE=1`` (set by the CI examples job) shrinks the
#: effort knobs so every example still exercises its whole pipeline but
#: finishes in seconds.
SMOKE = envgates.examples_smoke()

from repro.experiments.replication import label_key
from repro import (
    AdHocInitializer,
    Evaluator,
    GAConfig,
    GeneticAlgorithm,
    InstanceSpec,
    make_method,
)

DISTRICTS = {
    "old-town": ("exponential", {"scale": 20.0}),
    "centre": ("normal", {}),
    "suburbs": ("uniform", {}),
}

#: Initializers compared per district (paper's leaders + the baseline).
CANDIDATE_INITIALIZERS = ("random", "near", "hotspot")


def district_spec(name: str, distribution: str, params: dict) -> InstanceSpec:
    """One district: 80x80 blocks, 32 routers, 120 residents."""
    return InstanceSpec(
        name=f"district-{name}",
        width=80,
        height=80,
        n_routers=32,
        n_clients=120,
        distribution=distribution,
        distribution_params=params,
        min_radius=2.5,
        max_radius=9.0,
        seed=label_key(name),
    )


def plan_district(name: str, distribution: str, params: dict) -> None:
    spec = district_spec(name, distribution, params)
    problem = spec.generate()
    print(f"--- {name} ({distribution} residents) ---")

    ga = GeneticAlgorithm(
        GAConfig(
            population_size=8 if SMOKE else 24,
            n_generations=5 if SMOKE else 60,
        )
    )
    outcomes = []
    for initializer_name in CANDIDATE_INITIALIZERS:
        rng = np.random.default_rng((13, label_key(initializer_name)))
        evaluator = Evaluator(problem)
        result = ga.run(
            evaluator,
            AdHocInitializer(make_method(initializer_name)),
            rng,
        )
        outcomes.append((initializer_name, result))
        print(
            f"  GA from {initializer_name:8s}: giant "
            f"{result.giant_size:2d}/{problem.n_routers}  coverage "
            f"{result.covered_clients:3d}/{problem.n_clients}  fitness "
            f"{result.best.fitness:.4f}  ({result.n_evaluations} evals)"
        )

    winner, best = max(outcomes, key=lambda item: item[1].best.fitness)
    ratio = best.covered_clients / problem.n_clients
    print(
        f"  => deploy the {winner} plan: {ratio:.0%} of residents covered, "
        f"{best.giant_size} of {problem.n_routers} routers meshed"
    )
    print()


def main() -> None:
    print("Municipal rollout planning (GA per district)")
    print("=" * 56)
    for name, (distribution, params) in DISTRICTS.items():
        plan_district(name, distribution, params)


if __name__ == "__main__":
    main()
