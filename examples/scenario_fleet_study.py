"""Scenario-fleet study: is warm re-optimization robust, or just fast?

One dynamic run can mislead — a lucky warm start under one drift
sequence says nothing about churn waves or router outages.  This example
measures re-optimization the way the paper measures placement methods:
as a *distribution*.  A :class:`~repro.scenario.ScenarioFleet` crosses
four perturbation regimes with two solver configurations and replays
every cell under several replication seeds, running warm and cold arms
on identical instance sequences.  The report answers three questions at
once:

* **quality** — per-cell mean/std fitness tables across seeds;
* **regret** — does warm tracking ever trail cold re-solves (a stale
  basin), and by how much;
* **recovery** — how hard each event kind dents the network and how
  much the next re-optimization claws back.

Every replicate of a cell advances in lockstep (one stacked engine pass
per phase for the whole cell), so the full grid costs a fraction of the
serial loop's wall-clock — the speedup ``benchmarks/bench_scenario_fleet.py``
pins.

Run:
    python examples/scenario_fleet_study.py
"""

from __future__ import annotations

from repro import envgates

from repro import Scenario, ScenarioFleet, paper_normal, render_fleet_report

#: ``REPRO_EXAMPLES_SMOKE=1`` (set by the CI examples job) shrinks the
#: effort knobs so every example still exercises its whole pipeline but
#: finishes in seconds.
SMOKE = envgates.examples_smoke()


def build_grid(problem) -> list[Scenario]:
    """The four canonical regimes the dynamic-WMN literature re-plans under."""
    n_steps = 2 if SMOKE else 6
    return [
        Scenario.client_drift(problem, n_steps, sigma=2.0),
        Scenario.client_churn(problem, n_steps, fraction=0.15),
        Scenario.router_outages(problem, n_steps, count=1),
        Scenario.radio_degradation(problem, n_steps, factor=0.95),
    ]


def main() -> None:
    problem = paper_normal().generate()
    scenarios = build_grid(problem)
    budget = 6 if SMOKE else 48
    candidates = 8 if SMOKE else 16
    n_seeds = 2 if SMOKE else 8

    fleet = ScenarioFleet(
        scenarios,
        {
            "search:swap": (
                "search:swap",
                {"n_candidates": candidates, "stall_phases": 8},
            ),
            "search:random": (
                "search:random",
                {"n_candidates": candidates, "stall_phases": 8},
            ),
        },
        n_seeds=n_seeds,
        budget=budget,
        warm="both",
    )
    report = fleet.run(seed=42)
    print(render_fleet_report(report, chart=not SMOKE, height=12))

    # The regret table above is the robustness verdict; back it with the
    # connectivity view: mean giant-size AUC per cell and arm.
    print("mean giant-size AUC (higher = connectivity held through the run)")
    for (scenario, solver, arm), auc in sorted(report.recovery_auc().items()):
        print(f"  {scenario:16s} {solver:16s} {arm:5s} {auc:8.1f}")


if __name__ == "__main__":
    main()
