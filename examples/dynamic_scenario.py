"""Dynamic re-optimization: keeping a mesh placed while its world changes.

The paper places routers for one frozen client snapshot; real
deployments then live through months of drifting users, failing
hardware and weakening radios.  This example runs the paper's instance
through a mixed 12-step scenario — client drift, a two-router outage,
radio decay, a churn wave — and re-optimizes every step with the
unified solver registry, warm-starting each re-solve from the previous
placement.  A cold rerun of the *identical* timeline shows what the
warm starts buy here: several times fewer evaluations for better
quality.  (Warm tracking inherits the initial deployment's basin — if
step 0 lands poorly, mix exploration back in: raise ``budget``, drop
``warm=`` for occasional steps, or track with ``multistart:swap``.)

Run:
    python examples/dynamic_scenario.py
"""

from __future__ import annotations

from repro import envgates

from repro import Scenario, ScenarioRunner, paper_normal
from repro.scenario import (
    ClientChurn,
    ClientDrift,
    RadioDegradation,
    RouterOutage,
)
from repro.viz import render_fitness_chart, render_timeline

#: ``REPRO_EXAMPLES_SMOKE=1`` (set by the CI examples job) shrinks the
#: effort knobs so every example still exercises its whole pipeline but
#: finishes in seconds.
SMOKE = envgates.examples_smoke()


def build_timeline(problem) -> Scenario:
    """A year in the life of the deployment, in 12 steps."""
    quiet_months = [ClientDrift(sigma=2.0)] * 4
    incident = [RouterOutage(count=2)]
    decay = [RadioDegradation(factor=0.92)] * 2
    churn_wave = [ClientChurn(fraction=0.25, distribution="exponential")]
    more_drift = [ClientDrift(sigma=2.0)] * 4
    return Scenario.composite(
        "year-in-the-life",
        problem,
        quiet_months + incident + decay + churn_wave + more_drift,
    )


def main() -> None:
    problem = paper_normal().generate()
    scenario = build_timeline(problem)
    budget = 8 if SMOKE else 64
    candidates = 8 if SMOKE else 32

    # Any registry spec works here: "tabu:swap", "annealing:random",
    # "ga:hotspot", ... — the runner only speaks the Solver contract.
    runner = ScenarioRunner(
        "search:swap", budget=budget, n_candidates=candidates, stall_phases=8
    )
    warm = runner.run(scenario, seed=42)
    print(render_timeline(warm))

    cold = ScenarioRunner(
        "search:swap",
        budget=budget,
        n_candidates=candidates,
        stall_phases=8,
        warm=False,
    ).run(scenario, seed=42)
    ratio = cold.reopt_evaluations() / max(1, warm.reopt_evaluations())
    print(
        f"cold re-solves of the same timeline: "
        f"{cold.reopt_evaluations()} evaluations vs {warm.reopt_evaluations()} "
        f"warm ({ratio:.1f}x more) for mean fitness "
        f"{cold.mean_fitness():.4f} vs {warm.mean_fitness():.4f}"
    )
    print()
    print(render_fitness_chart([warm, cold], height=12))


if __name__ == "__main__":
    main()
