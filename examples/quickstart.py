"""Quickstart: place mesh routers on the paper's benchmark instance.

Generates the canonical Table-1 instance (64 routers, 128x128 grid, 192
Normal-distributed clients), runs the HotSpot ad hoc placement, refines
it with the paper's swap-movement neighborhood search and renders the
result.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import envgates

#: ``REPRO_EXAMPLES_SMOKE=1`` (set by the CI examples job) shrinks the
#: effort knobs so every example still exercises its whole pipeline but
#: finishes in seconds.
SMOKE = envgates.examples_smoke()

from repro import (
    Evaluator,
    HotSpotPlacement,
    NeighborhoodSearch,
    SwapMovement,
    paper_normal,
    render_evaluation,
)


def main() -> None:
    # 1. The benchmark instance from the paper's evaluation section.
    spec = paper_normal()
    problem = spec.generate()
    print(f"instance: {spec.describe()}")
    print()

    rng = np.random.default_rng(2009)
    evaluator = Evaluator(problem)

    # 2. Fast ad hoc placement: strongest routers onto client hotspots.
    initial = HotSpotPlacement().place(problem, rng)
    initial_eval = evaluator.evaluate(initial)
    print(f"HotSpot ad hoc placement : {initial_eval.summary()}")

    # 3. Neighborhood search with the swap movement (Algorithms 1-3).
    search = NeighborhoodSearch(
        movement=SwapMovement(),
        n_candidates=8 if SMOKE else 32,
        max_phases=6 if SMOKE else 48,
        stall_phases=None,
    )
    result = search.run(evaluator, initial, rng)
    print(f"after {result.n_phases} swap phases  : {result.best.summary()}")
    print(f"evaluations spent        : {result.n_evaluations}")
    print()

    # 4. A terminal map: '#' giant-component routers, 'r' detached
    #    routers, '.' clients.
    print(render_evaluation(problem, result.best))


if __name__ == "__main__":
    main()
