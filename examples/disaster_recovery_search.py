"""Rapid mesh re-planning after router failures.

WMNs are prized for "reliability, robustness, and self-configuring
properties" (paper, Section 1).  This example stress-tests that claim:
starting from an optimized deployment we knock out the strongest
routers, measure the degradation and let the neighborhood search
re-plan the survivors — comparing the paper's swap movement against
simulated annealing and tabu search under the same evaluation budget.

Run:
    python examples/disaster_recovery_search.py
"""

from __future__ import annotations

import numpy as np

from repro import envgates

#: ``REPRO_EXAMPLES_SMOKE=1`` (set by the CI examples job) shrinks the
#: effort knobs so every example still exercises its whole pipeline but
#: finishes in seconds.
SMOKE = envgates.examples_smoke()

from repro import (
    Evaluator,
    HotSpotPlacement,
    NeighborhoodSearch,
    ProblemInstance,
    SimulatedAnnealing,
    SwapMovement,
    TabuSearch,
    paper_normal,
)
from repro.core.clients import ClientSet
from repro.core.routers import RouterFleet
from repro.core.solution import Placement


def knock_out_strongest(
    problem: ProblemInstance, placement: Placement, count: int
) -> tuple[ProblemInstance, Placement]:
    """Remove the ``count`` most powerful routers from the deployment."""
    doomed = {
        router.router_id
        for router in problem.fleet.by_power_descending()[:count]
    }
    surviving_radii = [
        router.radius for router in problem.fleet if router.router_id not in doomed
    ]
    surviving_cells = [
        placement[router.router_id]
        for router in problem.fleet
        if router.router_id not in doomed
    ]
    reduced = ProblemInstance(
        grid=problem.grid,
        fleet=RouterFleet.from_radii(surviving_radii),
        clients=ClientSet.from_points(problem.clients.cells(), grid=problem.grid),
        link_rule=problem.link_rule,
        coverage_rule=problem.coverage_rule,
    )
    return reduced, Placement.from_cells(problem.grid, surviving_cells)


def main() -> None:
    problem = paper_normal().generate()
    rng = np.random.default_rng(99)

    # 1. Pre-disaster deployment: HotSpot + a short swap search.
    evaluator = Evaluator(problem)
    initial = HotSpotPlacement().place(problem, rng)
    deployed = NeighborhoodSearch(
        SwapMovement(),
        n_candidates=8 if SMOKE else 32,
        max_phases=6 if SMOKE else 30,
        stall_phases=None,
    ).run(evaluator, initial, rng)
    print(f"deployed network      : {deployed.best.summary()}")

    # 2. Disaster: the 8 most powerful routers go dark.
    reduced_problem, surviving = knock_out_strongest(
        problem, deployed.best.placement, count=8
    )
    reduced_evaluator = Evaluator(reduced_problem)
    degraded = reduced_evaluator.evaluate(surviving)
    print(f"after losing 8 routers: {degraded.summary()}")
    print()

    # 3. Re-plan the survivors: the paper's search vs its future-work
    #    extensions, equal budgets.
    budget_phases, budget_moves = (6, 8) if SMOKE else (30, 32)
    contenders = {
        "swap neighborhood search": NeighborhoodSearch(
            SwapMovement(),
            n_candidates=budget_moves,
            max_phases=budget_phases,
            stall_phases=None,
        ),
        "simulated annealing": SimulatedAnnealing(
            SwapMovement(),
            max_phases=budget_phases,
            moves_per_phase=budget_moves,
        ),
        "tabu search": TabuSearch(
            SwapMovement(),
            tenure=6,
            n_candidates=budget_moves,
            max_phases=budget_phases,
        ),
    }
    print(f"{'re-planner':26s} {'giant':>7s} {'coverage':>9s} {'fitness':>9s}")
    for label, algorithm in contenders.items():
        outcome = algorithm.run(
            Evaluator(reduced_problem), surviving, np.random.default_rng(5)
        )
        best = outcome.best
        print(
            f"{label:26s} {best.giant_size:3d}/{reduced_problem.n_routers:<3d} "
            f"{best.covered_clients:4d}/{reduced_problem.n_clients:<4d} "
            f"{best.fitness:9.4f}"
        )
    print()
    print(
        "The mesh heals: local search recovers most of the lost\n"
        "connectivity by repositioning the surviving routers."
    )


if __name__ == "__main__":
    main()
