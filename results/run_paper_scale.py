"""Generates the paper-scale reproduction report used by EXPERIMENTS.md."""
import time

from repro.experiments.config import PAPER_SCALE
from repro.experiments.runner import run_all

start = time.time()
report = run_all(scale=PAPER_SCALE, seed=1)
elapsed = time.time() - start
with open("/root/repo/results/paper_scale_report.txt", "w") as fh:
    fh.write(report.render_text())
    fh.write(f"\n[completed in {elapsed / 60:.1f} minutes]\n")
report.save_csvs("/root/repo/results/csv")
print(f"done in {elapsed / 60:.1f} min")
