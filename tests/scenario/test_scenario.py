"""Scenario unfolding: reproducibility and builder semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenario import (
    ClientDrift,
    RadioDegradation,
    RouterOutage,
    Scenario,
)


class TestUnfold:
    def test_step_zero_is_base(self, tiny_problem):
        scenario = Scenario.client_drift(tiny_problem, 3)
        steps = scenario.unfold(seed=1)
        assert steps[0].problem is tiny_problem
        assert steps[0].change is None
        assert steps[0].event == "initial deployment"

    def test_length_and_indices(self, tiny_problem):
        scenario = Scenario.client_drift(tiny_problem, 4)
        steps = scenario.unfold(seed=1)
        assert scenario.n_steps == 5
        assert [step.index for step in steps] == [0, 1, 2, 3, 4]

    def test_same_seed_same_sequence(self, tiny_problem):
        scenario = Scenario.client_drift(tiny_problem, 4, sigma=3.0)
        a = scenario.unfold(seed=9)
        b = scenario.unfold(seed=9)
        for step_a, step_b in zip(a, b):
            assert np.array_equal(
                step_a.problem.clients.positions,
                step_b.problem.clients.positions,
            )

    def test_different_seeds_diverge(self, tiny_problem):
        scenario = Scenario.client_drift(tiny_problem, 2, sigma=3.0)
        a = scenario.unfold(seed=1)
        b = scenario.unfold(seed=2)
        assert not np.array_equal(
            a[1].problem.clients.positions, b[1].problem.clients.positions
        )

    def test_steps_chain(self, tiny_problem):
        scenario = Scenario.router_outages(tiny_problem, 3, count=1)
        steps = scenario.unfold(seed=4)
        sizes = [step.problem.n_routers for step in steps]
        assert sizes == [16, 15, 14, 13]


class TestBuilders:
    def test_composite_mixes_kinds(self, tiny_problem):
        scenario = Scenario.composite(
            "mixed",
            tiny_problem,
            [ClientDrift(1.0), RouterOutage(1), RadioDegradation(0.9)],
        )
        steps = scenario.unfold(seed=2)
        assert steps[2].problem.n_routers == tiny_problem.n_routers - 1
        assert "decay" in steps[3].event

    def test_outage_budget_checked(self, tiny_problem):
        with pytest.raises(ValueError, match="exhaust"):
            Scenario.router_outages(tiny_problem, 8, count=2)

    def test_empty_scenario_rejected(self, tiny_problem):
        with pytest.raises(ValueError, match="at least one perturbation"):
            Scenario(name="empty", base=tiny_problem, perturbations=())

    @pytest.mark.parametrize(
        "builder, kwargs",
        [
            ("client_drift", {"sigma": 1.5}),
            ("client_churn", {"fraction": 0.2}),
            ("router_outages", {"count": 1}),
            ("radio_degradation", {"factor": 0.8}),
        ],
    )
    def test_builders_unfold(self, tiny_problem, builder, kwargs):
        scenario = getattr(Scenario, builder)(tiny_problem, 2, **kwargs)
        assert len(scenario.unfold(seed=0)) == 3
