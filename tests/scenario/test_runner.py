"""ScenarioRunner: warm-start handoff, controlled baselines, accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenario import Scenario, ScenarioRunner
from repro.solvers import make_solver


class TestRun:
    def test_warm_and_cold_see_same_instances(self, tiny_problem):
        scenario = Scenario.client_drift(tiny_problem, 3)
        warm = ScenarioRunner("search:swap", budget=3, n_candidates=4).run(
            scenario, seed=5
        )
        cold = ScenarioRunner(
            "search:swap", budget=3, warm=False, n_candidates=4
        ).run(scenario, seed=5)
        for a, b in zip(warm.steps, cold.steps):
            assert np.array_equal(
                a.step.problem.clients.positions,
                b.step.problem.clients.positions,
            )
        assert warm.warm and not cold.warm

    def test_step_zero_cold_then_warm(self, tiny_problem):
        scenario = Scenario.client_drift(tiny_problem, 2)
        outcome = ScenarioRunner("tabu:swap", budget=3, n_candidates=4).run(
            scenario, seed=5
        )
        flags = [step.result.warm_started for step in outcome.steps]
        assert flags == [False, True, True]

    def test_reproducible(self, tiny_problem):
        scenario = Scenario.client_churn(tiny_problem, 3, fraction=0.2)
        runner = ScenarioRunner("search:swap", budget=3, n_candidates=4)
        a = runner.run(scenario, seed=8)
        b = runner.run(scenario, seed=8)
        assert [s.result.best.fitness for s in a.steps] == [
            s.result.best.fitness for s in b.steps
        ]
        assert a.total_evaluations == b.total_evaluations

    def test_outage_scenario_shrinks_fleet_with_warm_start(self, tiny_problem):
        scenario = Scenario.router_outages(tiny_problem, 3, count=2)
        outcome = ScenarioRunner("tabu:swap", budget=3, n_candidates=4).run(
            scenario, seed=2
        )
        placements = [len(s.result.best.placement) for s in outcome.steps]
        assert placements == [16, 14, 12, 10]
        assert all(s.result.warm_started for s in outcome.steps[1:])

    def test_solver_without_warm_support_runs_cold(self, tiny_problem):
        scenario = Scenario.client_drift(tiny_problem, 2)
        outcome = ScenarioRunner("adhoc:hotspot").run(scenario, seed=1)
        assert not outcome.warm
        assert all(not s.result.warm_started for s in outcome.steps)
        assert outcome.total_evaluations == 3  # one per step

    def test_solver_instance_accepted(self, tiny_problem):
        solver = make_solver("search:swap", n_candidates=4)
        outcome = ScenarioRunner(solver, budget=2).run(
            Scenario.client_drift(tiny_problem, 1), seed=0
        )
        assert outcome.solver_name == "search:swap"

    def test_solver_kwargs_require_spec(self):
        with pytest.raises(ValueError, match="registry spec"):
            ScenarioRunner(make_solver("search:swap"), n_candidates=4)

    def test_warm_budget_overrides_reopt_steps(self, tiny_problem):
        scenario = Scenario.client_drift(tiny_problem, 2)
        outcome = ScenarioRunner(
            "tabu:swap", budget=6, warm_budget=2, n_candidates=4
        ).run(scenario, seed=3)
        assert outcome.steps[0].result.n_phases == 6
        assert outcome.steps[1].result.n_phases == 2

    def test_cache_handoff_matches_no_cache(self, tiny_problem):
        scenario = Scenario.client_drift(tiny_problem, 3)
        with_cache = ScenarioRunner(
            "tabu:swap", budget=3, n_candidates=4
        ).run(scenario, seed=4)
        without = ScenarioRunner(
            "tabu:swap", budget=3, reuse_cache=False, n_candidates=4
        ).run(scenario, seed=4)
        assert [s.result.best.fitness for s in with_cache.steps] == [
            s.result.best.fitness for s in without.steps
        ]
        assert [
            s.result.best.placement.cells for s in with_cache.steps
        ] == [s.result.best.placement.cells for s in without.steps]


    def test_cache_handoff_fires_under_drift(self, tiny_problem):
        """Under client drift the previous cache validates at the next step.

        The warm start is the previous best placement and the exported
        cache is keyed to exactly that placement; drift moves only
        clients, so the cached router network must test valid — the
        reuse the handoff exists for.
        """
        scenario = Scenario.client_drift(tiny_problem, 3)
        outcome = ScenarioRunner("tabu:swap", budget=4, n_candidates=4).run(
            scenario, seed=6
        )
        for prev, step in zip(outcome.steps, outcome.steps[1:]):
            cache = prev.result.engine_cache
            assert cache is not None
            warm = prev.result.best.placement
            problem = step.step.problem
            assert cache.network_valid_for(
                warm.positions_array(),
                problem.fleet.radii,
                problem.link_rule,
            )


class TestNoStateLeak:
    """The runner must not permanently mutate a caller-owned solver."""

    def test_track_cache_restored_after_run(self, tiny_problem):
        solver = make_solver("tabu:swap", n_candidates=4)
        assert solver.track_cache is False
        outcome = ScenarioRunner(solver, budget=3).run(
            Scenario.client_drift(tiny_problem, 2), seed=1
        )
        # Tracking was on during the run (caches were exported)...
        assert outcome.steps[0].result.engine_cache is not None
        # ...but the caller's solver is exactly as it was handed over.
        assert solver.track_cache is False

    def test_enabled_tracking_survives_run(self, tiny_problem):
        solver = make_solver("annealing:swap", track_cache=True, max_phases=2)
        ScenarioRunner(solver, budget=2).run(
            Scenario.client_drift(tiny_problem, 1), seed=1
        )
        assert solver.track_cache is True

    def test_restored_even_when_a_step_raises(self, tiny_problem):
        solver = make_solver("tabu:swap", n_candidates=4)
        runner = ScenarioRunner(solver, budget=3)
        broken = Scenario.client_drift(tiny_problem, 1)
        steps = broken.unfold(0)
        # Sabotage the second step so the solve inside the loop raises.
        bad = [steps[0], steps[1]]
        object.__setattr__(bad[1], "problem", None)
        with pytest.raises(AttributeError):
            runner.run_steps(bad, seed=1)
        assert solver.track_cache is False

    def test_later_unrelated_solve_keeps_no_snapshot(self, tiny_problem):
        solver = make_solver("tabu:swap", n_candidates=4)
        ScenarioRunner(solver, budget=3).run(
            Scenario.client_drift(tiny_problem, 1), seed=1
        )
        later = solver.solve(tiny_problem, seed=9, budget=3)
        assert later.engine_cache is None


class TestSeedProvenance:
    """The root entropy is recorded for int and SeedSequence seeds alike."""

    def test_int_seed_recorded(self, tiny_problem):
        outcome = ScenarioRunner("search:swap", budget=2, n_candidates=4).run(
            Scenario.client_drift(tiny_problem, 1), seed=37
        )
        assert outcome.seed == 37

    def test_seed_sequence_entropy_recorded(self, tiny_problem):
        outcome = ScenarioRunner("search:swap", budget=2, n_candidates=4).run(
            Scenario.client_drift(tiny_problem, 1),
            seed=np.random.SeedSequence(37),
        )
        assert outcome.seed == 37

    def test_spawned_child_reports_root_entropy(self, tiny_problem):
        child = np.random.SeedSequence(37).spawn(3)[2]
        outcome = ScenarioRunner("search:swap", budget=2, n_candidates=4).run(
            Scenario.client_drift(tiny_problem, 1), seed=child
        )
        assert outcome.seed == 37

    def test_threaded_into_timeline_and_summary(self, tiny_problem):
        outcome = ScenarioRunner("search:swap", budget=2, n_candidates=4).run(
            Scenario.client_drift(tiny_problem, 1), seed=37
        )
        assert all(row["seed"] == 37 for row in outcome.timeline())
        assert "seed=37" in outcome.summary()


class TestValidation:
    def test_warm_budget_with_cold_runs_rejected(self):
        with pytest.raises(ValueError, match="warm_budget"):
            ScenarioRunner("search:swap", warm_budget=4, warm=False)

    @pytest.mark.parametrize("budget", [0, -3])
    def test_non_positive_budget_rejected(self, budget):
        with pytest.raises(ValueError, match="budget must be a positive"):
            ScenarioRunner("search:swap", budget=budget)

    @pytest.mark.parametrize("warm_budget", [0, -1])
    def test_non_positive_warm_budget_rejected(self, warm_budget):
        with pytest.raises(ValueError, match="warm_budget must be a positive"):
            ScenarioRunner("search:swap", budget=4, warm_budget=warm_budget)


class TestRunSteps:
    def test_run_steps_matches_run(self, tiny_problem):
        scenario = Scenario.client_drift(tiny_problem, 2)
        runner = ScenarioRunner("search:swap", budget=3, n_candidates=4)
        whole = runner.run(scenario, seed=11)
        root = np.random.SeedSequence(11)
        unfold_seq, solve_seq = root.spawn(2)
        split = runner.run_steps(
            scenario.unfold(unfold_seq),
            seed=solve_seq,
            scenario_name=scenario.name,
        )
        assert [s.result.best.fitness for s in whole.steps] == [
            s.result.best.fitness for s in split.steps
        ]
        assert [s.result.best.placement.cells for s in whole.steps] == [
            s.result.best.placement.cells for s in split.steps
        ]
        assert whole.seed == split.seed == 11
        assert split.scenario_name == scenario.name


class TestResult:
    def test_accounting(self, tiny_problem):
        scenario = Scenario.client_drift(tiny_problem, 2)
        outcome = ScenarioRunner("search:swap", budget=3, n_candidates=4).run(
            scenario, seed=5
        )
        assert outcome.n_steps == 3
        assert outcome.total_evaluations == sum(
            s.result.n_evaluations for s in outcome.steps
        )
        assert outcome.reopt_evaluations() == sum(
            s.result.n_evaluations for s in outcome.steps[1:]
        )
        assert outcome.final is outcome.steps[-1].result
        assert 0.0 <= outcome.mean_fitness() <= 1.0
        assert "3 steps" in outcome.summary()

    def test_timeline_records(self, tiny_problem):
        scenario = Scenario.radio_degradation(tiny_problem, 2, factor=0.8)
        outcome = ScenarioRunner("search:swap", budget=2, n_candidates=4).run(
            scenario, seed=5
        )
        rows = outcome.timeline()
        assert len(rows) == 3
        assert rows[0]["event"] == "initial deployment"
        assert all(
            {"step", "event", "fitness", "evaluations", "warm"} <= set(row)
            for row in rows
        )
