"""Perturbation semantics: determinism, frame invariants, carry rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solution import Placement
from repro.scenario import (
    ClientChurn,
    ClientDrift,
    RadioDegradation,
    RouterOutage,
)

ALL_PERTURBATIONS = (
    ClientDrift(sigma=2.0),
    ClientDrift(sigma=1.0, fraction=0.25),
    ClientChurn(fraction=0.2),
    ClientChurn(fraction=0.1, distribution="normal"),
    RouterOutage(count=2),
    RadioDegradation(factor=0.8),
)


class TestShared:
    @pytest.mark.parametrize("perturbation", ALL_PERTURBATIONS)
    def test_deterministic_given_rng(self, tiny_problem, perturbation):
        a = perturbation.apply(tiny_problem, np.random.default_rng(5))
        b = perturbation.apply(tiny_problem, np.random.default_rng(5))
        assert np.array_equal(
            a.problem.clients.positions, b.problem.clients.positions
        )
        assert np.array_equal(a.problem.fleet.radii, b.problem.fleet.radii)
        assert a.event == b.event

    @pytest.mark.parametrize("perturbation", ALL_PERTURBATIONS)
    def test_grid_never_changes(self, tiny_problem, perturbation):
        change = perturbation.apply(tiny_problem, np.random.default_rng(1))
        assert change.problem.grid == tiny_problem.grid

    @pytest.mark.parametrize("perturbation", ALL_PERTURBATIONS)
    def test_original_problem_untouched(self, tiny_problem, perturbation):
        before = tiny_problem.clients.positions.copy()
        radii = tiny_problem.fleet.radii.copy()
        perturbation.apply(tiny_problem, np.random.default_rng(2))
        assert np.array_equal(tiny_problem.clients.positions, before)
        assert np.array_equal(tiny_problem.fleet.radii, radii)


class TestClientDrift:
    def test_moves_clients_within_grid(self, tiny_problem):
        change = ClientDrift(sigma=5.0).apply(
            tiny_problem, np.random.default_rng(3)
        )
        positions = change.problem.clients.positions
        assert positions.shape == tiny_problem.clients.positions.shape
        assert not np.array_equal(positions, tiny_problem.clients.positions)
        assert positions.min() >= 0
        assert positions[:, 0].max() < tiny_problem.grid.width
        assert positions[:, 1].max() < tiny_problem.grid.height

    def test_fraction_bounds_movers(self, tiny_problem):
        change = ClientDrift(sigma=4.0, fraction=0.25).apply(
            tiny_problem, np.random.default_rng(3)
        )
        moved = np.any(
            change.problem.clients.positions
            != tiny_problem.clients.positions,
            axis=1,
        )
        assert 0 < moved.sum() <= round(0.25 * tiny_problem.n_clients)

    def test_placement_carries_unchanged(self, tiny_problem, rng):
        placement = Placement.random(
            tiny_problem.grid, tiny_problem.n_routers, rng
        )
        change = ClientDrift().apply(tiny_problem, np.random.default_rng(0))
        assert change.carry_placement(placement) is placement
        assert change.carry_placement(None) is None

    @pytest.mark.parametrize("bad", [{"sigma": 0.0}, {"fraction": 0.0}, {"fraction": 1.5}])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ClientDrift(**bad)


class TestClientChurn:
    def test_population_size_preserved(self, tiny_problem):
        change = ClientChurn(fraction=0.3).apply(
            tiny_problem, np.random.default_rng(4)
        )
        assert change.problem.n_clients == tiny_problem.n_clients

    def test_some_clients_replaced(self, tiny_problem):
        change = ClientChurn(fraction=0.5).apply(
            tiny_problem, np.random.default_rng(4)
        )
        assert not np.array_equal(
            change.problem.clients.positions, tiny_problem.clients.positions
        )


class TestRouterOutage:
    def test_fleet_shrinks_and_placement_follows(self, tiny_problem, rng):
        placement = Placement.random(
            tiny_problem.grid, tiny_problem.n_routers, rng
        )
        change = RouterOutage(count=3).apply(
            tiny_problem, np.random.default_rng(6)
        )
        assert change.problem.n_routers == tiny_problem.n_routers - 3
        carried = change.carry_placement(placement)
        assert len(carried) == change.problem.n_routers
        # Survivors keep their cells, in fleet order.
        for new_id, old_id in enumerate(change.kept_routers):
            assert carried.cells[new_id] == placement.cells[int(old_id)]
            assert (
                change.problem.fleet.radii[new_id]
                == tiny_problem.fleet.radii[int(old_id)]
            )

    def test_cannot_exhaust_fleet(self, tiny_problem):
        with pytest.raises(ValueError, match="at least one must survive"):
            RouterOutage(count=tiny_problem.n_routers).apply(
                tiny_problem, np.random.default_rng(0)
            )


class TestRadioDegradation:
    def test_radii_decay_with_floor(self, tiny_problem):
        change = RadioDegradation(factor=0.5, floor=1.0).apply(
            tiny_problem, np.random.default_rng(0)
        )
        expected = np.maximum(tiny_problem.fleet.radii * 0.5, 1.0)
        assert np.allclose(change.problem.fleet.radii, expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            RadioDegradation(factor=1.0)
        with pytest.raises(ValueError):
            RadioDegradation(floor=0.0)
