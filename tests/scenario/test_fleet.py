"""ScenarioFleet: determinism, serial parity, sharding, aggregation.

The contract under test: every (scenario, solver, replicate) triple of
the grid is **bit-identical** to a serial
:meth:`~repro.scenario.runner.ScenarioRunner.run_steps` loop over the
same :func:`~repro.scenario.fleet.fleet_seed_grid` sequences — at any
``workers=`` count, for both arms, and across shard-boundary edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.instances.catalog import tiny_spec
from repro.scenario import (
    Scenario,
    ScenarioFleet,
    ScenarioRunner,
    fleet_seed_grid,
)
from repro.solvers import make_solver


@pytest.fixture(scope="module")
def problem():
    return tiny_spec(seed=7).generate()


@pytest.fixture(scope="module")
def scenarios(problem):
    return [
        Scenario.client_drift(problem, 2),
        Scenario.router_outages(problem, 2, count=1),
    ]


SOLVERS = [
    ("search:swap", {"n_candidates": 4}),
    ("tabu:swap", {"n_candidates": 4}),
]


def triple_signature(result):
    """Everything a triple's identity should pin, except wall-clock."""
    return [
        (
            step.result.best.fitness,
            step.result.best.placement.cells,
            step.result.n_evaluations,
            step.result.n_phases,
            step.result.warm_started,
        )
        for step in result.steps
    ]


def run_fleet(scenarios, n_seeds=3, workers=None, warm="both", seed=9):
    fleet = ScenarioFleet(
        scenarios,
        SOLVERS,
        n_seeds=n_seeds,
        budget=3,
        warm=warm,
        workers=workers,
    )
    return fleet.run(seed=seed)


class TestSerialParity:
    def test_every_triple_matches_the_serial_loop(self, scenarios):
        """The fleet == per-triple ScenarioRunner.run_steps on the grid seeds."""
        n_seeds = 3
        report = run_fleet(scenarios, n_seeds=n_seeds)
        grid = fleet_seed_grid(9, len(scenarios) * len(SOLVERS), n_seeds)
        cell = 0
        checked = 0
        for scenario in scenarios:
            for spec, kwargs in SOLVERS:
                unfold_seq, rep_seqs = grid[cell]
                cell += 1
                steps = scenario.unfold(unfold_seq)
                for warm in (True, False):
                    runner = ScenarioRunner(
                        spec, budget=3, warm=warm, **kwargs
                    )
                    for replicate, seq in enumerate(rep_seqs):
                        serial = runner.run_steps(
                            steps, seed=seq, scenario_name=scenario.name
                        )
                        (run,) = [
                            r
                            for r in report.select(
                                scenario.name, spec, warm
                            )
                            if r.replicate == replicate
                        ]
                        assert triple_signature(serial) == triple_signature(
                            run.result
                        )
                        assert serial.seed == run.result.seed == 9
                        checked += 1
        assert checked == report.n_seeds * 2 * len(scenarios) * len(SOLVERS)


class TestWorkersDeterminism:
    def test_workers_1_vs_4_bit_identical(self, scenarios):
        serial = run_fleet(scenarios, n_seeds=4, workers=1)
        sharded = run_fleet(scenarios, n_seeds=4, workers=4)
        assert len(serial.runs) == len(sharded.runs)
        for a, b in zip(serial.runs, sharded.runs):
            assert (a.scenario, a.solver, a.warm, a.replicate) == (
                b.scenario,
                b.solver,
                b.warm,
                b.replicate,
            )
            assert triple_signature(a.result) == triple_signature(b.result)

    def test_more_workers_than_seeds(self, scenarios):
        """Shard-boundary edge case: n_seeds < workers."""
        serial = run_fleet(scenarios[:1], n_seeds=2, workers=None, warm=True)
        sharded = run_fleet(scenarios[:1], n_seeds=2, workers=5, warm=True)
        for a, b in zip(serial.runs, sharded.runs):
            assert triple_signature(a.result) == triple_signature(b.result)

    def test_single_triple_grid(self, problem):
        """Shard-boundary edge case: a 1x1x1 grid."""
        fleet_kwargs = dict(n_seeds=1, budget=3, warm=True)
        single = [Scenario.client_drift(problem, 2)]
        solver = [("search:swap", {"n_candidates": 4})]
        a = ScenarioFleet(single, solver, **fleet_kwargs).run(seed=4)
        b = ScenarioFleet(single, solver, workers=3, **fleet_kwargs).run(
            seed=4
        )
        assert len(a.runs) == len(b.runs) == 1
        assert triple_signature(a.runs[0].result) == triple_signature(
            b.runs[0].result
        )

    def test_rerun_is_deterministic(self, scenarios):
        first = run_fleet(scenarios, n_seeds=2)
        second = run_fleet(scenarios, n_seeds=2)
        for a, b in zip(first.runs, second.runs):
            assert triple_signature(a.result) == triple_signature(b.result)


class TestControlledComparison:
    def test_warm_and_cold_share_instance_sequences(self, scenarios):
        """Per root seed, both arms re-optimize identical instances."""
        report = run_fleet(scenarios, n_seeds=2)
        for scenario in report.scenarios:
            for solver in report.solvers:
                warm_runs = report.select(scenario, solver, warm=True)
                cold_runs = report.select(scenario, solver, warm=False)
                for w, c in zip(warm_runs, cold_runs):
                    assert w.replicate == c.replicate
                    for sw, sc in zip(w.result.steps, c.result.steps):
                        assert np.array_equal(
                            sw.step.problem.clients.positions,
                            sc.step.problem.clients.positions,
                        )
                        assert np.array_equal(
                            sw.step.problem.fleet.radii,
                            sc.step.problem.fleet.radii,
                        )

    def test_replicates_share_the_unfold_within_a_cell(self, scenarios):
        """All seeds of a cell see the same instance sequence."""
        report = run_fleet(scenarios, n_seeds=3, warm=True)
        for scenario in report.scenarios:
            runs = report.select(scenario, "search:swap", warm=True)
            reference = runs[0]
            for other in runs[1:]:
                for a, b in zip(
                    reference.result.steps, other.result.steps
                ):
                    assert np.array_equal(
                        a.step.problem.clients.positions,
                        b.step.problem.clients.positions,
                    )

    def test_arms_differ_only_in_warm_starts(self, scenarios):
        report = run_fleet(scenarios, n_seeds=2)
        for run in report.runs:
            flags = [
                step.result.warm_started for step in run.result.steps
            ]
            if run.warm:
                assert flags == [False] + [True] * (len(flags) - 1)
            else:
                assert not any(flags)


class TestFleetInputs:
    def test_solver_instances_accepted(self, problem):
        solver = make_solver("search:swap", n_candidates=4)
        report = ScenarioFleet(
            [Scenario.client_drift(problem, 1)], [solver], n_seeds=2, budget=2
        ).run(seed=1)
        assert report.solvers == ["search:swap"]
        # ...and the instance comes back unmutated (no track_cache leak).
        assert not getattr(solver, "track_cache", False)

    def test_scenario_mapping_labels(self, problem):
        report = ScenarioFleet(
            {"quiet": Scenario.client_drift(problem, 1)},
            [("search:swap", {"n_candidates": 4})],
            n_seeds=1,
            budget=2,
        ).run(seed=1)
        assert report.scenarios == ["quiet"]

    def test_solver_mapping_labels_allow_duplicate_specs(self, problem):
        report = ScenarioFleet(
            [Scenario.client_drift(problem, 1)],
            {
                "narrow": ("search:swap", {"n_candidates": 2}),
                "wide": ("search:swap", {"n_candidates": 8}),
            },
            n_seeds=1,
            budget=2,
        ).run(seed=1)
        assert report.solvers == ["narrow", "wide"]

    def test_duplicate_labels_rejected(self, problem):
        with pytest.raises(ValueError, match="duplicate solver label"):
            ScenarioFleet(
                [Scenario.client_drift(problem, 1)],
                ["search:swap", "search:swap"],
            )

    def test_validation_mirrors_runner(self, problem):
        single = [Scenario.client_drift(problem, 1)]
        with pytest.raises(ValueError, match="n_seeds"):
            ScenarioFleet(single, ["search:swap"], n_seeds=0)
        with pytest.raises(ValueError, match="workers"):
            ScenarioFleet(single, ["search:swap"], workers=0)
        with pytest.raises(ValueError, match="budget must be a positive"):
            ScenarioFleet(single, ["search:swap"], budget=-1)
        with pytest.raises(ValueError, match="warm_budget"):
            ScenarioFleet(
                single, ["search:swap"], budget=2, warm_budget=2, warm=False
            )
        with pytest.raises(ValueError, match="warm must be"):
            ScenarioFleet(single, ["search:swap"], warm="lukewarm")


class TestReport:
    @pytest.fixture(scope="class")
    def report(self, scenarios):
        return run_fleet(scenarios, n_seeds=3)

    def test_axes(self, report, scenarios):
        assert report.scenarios == [s.name for s in scenarios]
        assert report.solvers == ["search:swap", "tabu:swap"]
        assert report.arms == ["warm", "cold"]

    def test_fitness_table_covers_every_cell_and_arm(self, report):
        table = report.fitness_table()
        assert len(table) == 2 * 2 * 2
        for metrics in table.values():
            assert metrics["fitness"].n_seeds == 3
            assert 0.0 <= metrics["fitness"].mean <= 1.0
            assert metrics["evaluations"].mean > 0

    def test_regret_pairs_replicates(self, report):
        regret = report.regret()
        assert len(regret) == 4
        for metric in regret.values():
            assert metric.n_seeds == 3

    def test_recovery_curves_mean_over_replicates(self, report, scenarios):
        curves = report.recovery_curves(scenarios[0].name)
        assert len(curves) == 4  # 2 solvers x 2 arms
        for points in curves.values():
            assert [x for x, _ in points] == list(
                range(scenarios[0].n_steps)
            )

    def test_recovery_auc_via_analysis(self, report):
        auc = report.recovery_auc()
        assert len(auc) == 8
        assert all(value > 0 for value in auc.values())

    def test_event_impact_kinds(self, report):
        impact = report.event_impact()
        assert set(impact) == {"drift", "outage"}
        for values in impact.values():
            assert values["n_events"] > 0
            assert isinstance(values["impact"], float)

    def test_scenario_type_error_reachable(self):
        with pytest.raises(TypeError, match="expected a Scenario, got str"):
            ScenarioFleet(["drift"], ["search:swap"])

    def test_seed_provenance_on_every_run(self, report):
        assert all(run.seed == 9 for run in report.runs)
        assert all(
            row["seed"] == 9
            for run in report.runs
            for row in run.result.timeline()
        )

    def test_summary(self, report):
        summary = report.summary()
        assert "2 scenarios x 2 solvers x 3 seeds" in summary
        assert "warm+cold" in summary
