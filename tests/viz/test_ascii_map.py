"""Unit tests for the ASCII renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluation import Evaluator
from repro.core.geometry import Point
from repro.core.solution import Placement
from repro.viz.ascii_map import render_evaluation, render_placement


class TestRenderPlacement:
    def test_dimensions_capped(self, tiny_problem, rng):
        placement = Placement.random(
            tiny_problem.grid, tiny_problem.n_routers, rng
        )
        art = render_placement(tiny_problem, placement, max_width=20, max_height=10)
        lines = art.splitlines()
        assert len(lines) == 10 + 2  # rows + borders
        assert all(len(line) == 20 + 2 for line in lines)

    def test_small_grid_rendered_one_to_one(self, micro_problem, rng):
        placement = Placement.from_cells(
            micro_problem.grid,
            [Point(0, 0), Point(3, 0), Point(8, 8), Point(15, 15)],
        )
        art = render_placement(micro_problem, placement)
        lines = art.splitlines()
        assert len(lines) == 16 + 2
        # Bottom row (y=0) is the second-to-last line; router at x=0.
        assert lines[-2][1] == "#"

    def test_giant_mask_distinguishes_routers(self, micro_problem):
        placement = Placement.from_cells(
            micro_problem.grid,
            [Point(0, 0), Point(3, 0), Point(8, 8), Point(15, 15)],
        )
        mask = np.array([True, True, False, False])
        art = render_placement(micro_problem, placement, giant_mask=mask)
        assert "#" in art
        assert "r" in art

    def test_clients_rendered_as_dots(self, micro_problem):
        placement = Placement.from_cells(micro_problem.grid, [Point(0, 15)])
        art = render_placement(micro_problem, placement)
        assert "." in art

    def test_invalid_viewport_rejected(self, micro_problem, rng):
        placement = Placement.from_cells(micro_problem.grid, [Point(0, 0)])
        with pytest.raises(ValueError):
            render_placement(micro_problem, placement, max_width=0)

    def test_router_obscures_client(self, micro_problem):
        # Router and client share the (1,1) block: router wins.
        placement = Placement.from_cells(micro_problem.grid, [Point(1, 1)])
        art = render_placement(micro_problem, placement)
        lines = art.splitlines()
        assert lines[-3][2] == "#"


class TestRenderEvaluation:
    def test_includes_metrics_line(self, tiny_problem, rng):
        placement = Placement.random(
            tiny_problem.grid, tiny_problem.n_routers, rng
        )
        evaluation = Evaluator(tiny_problem).evaluate(placement)
        art = render_evaluation(tiny_problem, evaluation)
        assert "giant=" in art
        assert "fitness=" in art
        # Giant routers and others drawn from the evaluation's own mask.
        assert "#" in art or "r" in art
