"""Scenario timeline rendering."""

from __future__ import annotations

import pytest

from repro.scenario import Scenario, ScenarioFleet, ScenarioRunner
from repro.viz import (
    render_fitness_chart,
    render_fleet_report,
    render_timeline,
)


@pytest.fixture
def outcome(tiny_problem):
    scenario = Scenario.router_outages(tiny_problem, 2, count=1)
    return ScenarioRunner("search:swap", budget=3, n_candidates=4).run(
        scenario, seed=5
    )


class TestRenderTimeline:
    def test_one_row_per_step(self, outcome):
        text = render_timeline(outcome)
        lines = text.strip().splitlines()
        # summary + header + rule + one row per step
        assert len(lines) == 3 + outcome.n_steps

    def test_rows_show_events_and_start_mode(self, outcome):
        text = render_timeline(outcome)
        assert "initial deployment" in text
        assert "outage of router(s)" in text
        assert "cold" in text and "warm" in text

    def test_fitness_bar_present(self, outcome):
        text = render_timeline(outcome)
        assert "#" in text  # at least one non-empty bar


class TestRenderFitnessChart:
    def test_overlays_warm_and_cold(self, tiny_problem):
        scenario = Scenario.client_drift(tiny_problem, 2)
        warm = ScenarioRunner("search:swap", budget=2, n_candidates=4).run(
            scenario, seed=1
        )
        cold = ScenarioRunner(
            "search:swap", budget=2, warm=False, n_candidates=4
        ).run(scenario, seed=1)
        chart = render_fitness_chart([warm, cold], height=8)
        assert "search:swap (warm)" in chart
        assert "search:swap (cold)" in chart
        assert "step" in chart


class TestRenderFleetReport:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.instances.catalog import tiny_spec

        problem = tiny_spec().generate()
        fleet = ScenarioFleet(
            [Scenario.client_drift(problem, 2)],
            [("search:swap", {"n_candidates": 4}), ("tabu:swap", {"n_candidates": 4})],
            n_seeds=2,
            budget=2,
            warm="both",
        )
        return fleet.run(seed=3)

    def test_fitness_table_rows(self, report):
        text = render_fleet_report(report)
        assert "mean fitness" in text
        # one row per (scenario, solver, arm)
        assert text.count("search:swap") >= 2
        assert text.count("tabu:swap") >= 2
        assert "warm" in text and "cold" in text

    def test_regret_table_when_both_arms(self, report):
        text = render_fleet_report(report)
        assert "warm-vs-cold regret" in text

    def test_event_impact_table(self, report):
        text = render_fleet_report(report)
        assert "event impact" in text
        assert "drift" in text

    def test_chart_appends_recovery_curves(self, report):
        text = render_fleet_report(report, chart=True, height=8)
        assert "recovery curves — drift-2x2" in text
        assert "search:swap (warm)" in text

    def test_single_arm_omits_regret(self, tiny_problem):
        fleet = ScenarioFleet(
            [Scenario.client_drift(tiny_problem, 1)],
            [("search:swap", {"n_candidates": 4})],
            n_seeds=2,
            budget=2,
        )
        text = render_fleet_report(fleet.run(seed=3))
        assert "regret" not in text
