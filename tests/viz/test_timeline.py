"""Scenario timeline rendering."""

from __future__ import annotations

import pytest

from repro.scenario import Scenario, ScenarioRunner
from repro.viz import render_fitness_chart, render_timeline


@pytest.fixture
def outcome(tiny_problem):
    scenario = Scenario.router_outages(tiny_problem, 2, count=1)
    return ScenarioRunner("search:swap", budget=3, n_candidates=4).run(
        scenario, seed=5
    )


class TestRenderTimeline:
    def test_one_row_per_step(self, outcome):
        text = render_timeline(outcome)
        lines = text.strip().splitlines()
        # summary + header + rule + one row per step
        assert len(lines) == 3 + outcome.n_steps

    def test_rows_show_events_and_start_mode(self, outcome):
        text = render_timeline(outcome)
        assert "initial deployment" in text
        assert "outage of router(s)" in text
        assert "cold" in text and "warm" in text

    def test_fitness_bar_present(self, outcome):
        text = render_timeline(outcome)
        assert "#" in text  # at least one non-empty bar


class TestRenderFitnessChart:
    def test_overlays_warm_and_cold(self, tiny_problem):
        scenario = Scenario.client_drift(tiny_problem, 2)
        warm = ScenarioRunner("search:swap", budget=2, n_candidates=4).run(
            scenario, seed=1
        )
        cold = ScenarioRunner(
            "search:swap", budget=2, warm=False, n_candidates=4
        ).run(scenario, seed=1)
        chart = render_fitness_chart([warm, cold], height=8)
        assert "search:swap (warm)" in chart
        assert "search:swap (cold)" in chart
        assert "step" in chart
