"""Unit tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.viz.ascii_chart import render_chart


class TestRenderChart:
    def test_single_series_renders(self):
        chart = render_chart(
            {"swap": [(0, 3), (10, 20), (20, 40)]},
            width=30,
            height=8,
            x_label="phases",
            y_label="giant",
        )
        assert "*" in chart
        assert "legend: * swap" in chart
        assert "phases" in chart

    def test_axis_labels_show_extremes(self):
        chart = render_chart(
            {"a": [(0, 5), (100, 50)]}, width=20, height=6
        )
        assert "50" in chart
        assert "5" in chart
        assert "100" in chart

    def test_multiple_series_distinct_markers(self):
        chart = render_chart(
            {
                "first": [(0, 0), (10, 10)],
                "second": [(0, 10), (10, 0)],
            },
            width=20,
            height=6,
        )
        assert "* first" in chart
        assert "o second" in chart
        assert "o" in chart.splitlines()[0] + chart

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            render_chart({"a": [(0, 1)]}, width=4, height=10)
        with pytest.raises(ValueError):
            render_chart({"a": [(0, 1)]}, width=20, height=2)

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError, match="no data"):
            render_chart({"a": []})

    def test_flat_series_handled(self):
        # Zero y-span must not divide by zero.
        chart = render_chart({"flat": [(0, 7), (10, 7)]}, width=20, height=6)
        assert "*" in chart

    def test_single_point_series(self):
        chart = render_chart({"dot": [(5, 5)]}, width=20, height=6)
        assert "*" in chart

    def test_monotone_curve_marker_columns_monotone(self):
        chart = render_chart(
            {"up": [(0, 0), (5, 5), (10, 10)]}, width=24, height=8
        )
        rows = [
            line.split("|", 1)[1]
            for line in chart.splitlines()
            if "|" in line
        ]
        # Higher rows (earlier lines) hold markers further right.
        columns = [row.find("*") for row in rows if "*" in row]
        assert columns == sorted(columns, reverse=True)
