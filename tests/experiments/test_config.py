"""Unit tests for the experiment scale configuration."""

from __future__ import annotations

import pytest

from repro.experiments.config import (
    ExperimentScale,
    PAPER_SCALE,
    QUICK_SCALE,
    current_scale,
)


class TestScales:
    def test_quick_smaller_than_paper(self):
        assert QUICK_SCALE.n_generations < PAPER_SCALE.n_generations
        assert QUICK_SCALE.population_size < PAPER_SCALE.population_size
        assert QUICK_SCALE.ns_phases <= PAPER_SCALE.ns_phases

    def test_paper_scale_matches_paper_figures(self):
        # Figures 1-3 run to ~800 generations; Fig. 4 to ~61 phases.
        assert PAPER_SCALE.n_generations == 800
        assert PAPER_SCALE.ns_phases >= 61

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 1},
            {"n_generations": 0},
            {"ns_phases": 0},
            {"ns_candidates": 0},
            {"record_step": 0},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(
            name="x",
            population_size=8,
            n_generations=10,
            ns_phases=10,
            ns_candidates=4,
            record_step=2,
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            ExperimentScale(**base)


class TestCurrentScale:
    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale() is QUICK_SCALE

    def test_env_selects_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert current_scale() is PAPER_SCALE

    def test_env_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "  PAPER ")
        assert current_scale() is PAPER_SCALE

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "warp")
        with pytest.raises(ValueError, match="unknown REPRO_SCALE"):
            current_scale()

    def test_default_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale(default="paper") is PAPER_SCALE
