"""Unit tests for the convergence analysis helpers."""

from __future__ import annotations

import pytest

from repro.experiments.analysis import (
    area_under_curve,
    crossover_points,
    effort_to_reach,
    speed_summary,
)
from repro.experiments.figures import FigureResult, Series
from repro.instances.catalog import tiny_spec


def series(label, points):
    xs, ys = zip(*points)
    return Series(label=label, x=tuple(xs), giant_sizes=tuple(ys))


class TestEffortToReach:
    def test_first_hit_returned(self):
        s = series("a", [(0, 2), (5, 8), (10, 12), (15, 12)])
        assert effort_to_reach(s, 8) == 5
        assert effort_to_reach(s, 9) == 10

    def test_target_met_at_start(self):
        s = series("a", [(0, 10), (5, 12)])
        assert effort_to_reach(s, 10) == 0

    def test_unreachable_target(self):
        s = series("a", [(0, 2), (10, 4)])
        assert effort_to_reach(s, 100) is None


class TestAreaUnderCurve:
    def test_constant_curve(self):
        s = series("a", [(0, 10), (10, 10)])
        assert area_under_curve(s) == pytest.approx(10.0)

    def test_linear_ramp(self):
        s = series("a", [(0, 0), (10, 10)])
        assert area_under_curve(s) == pytest.approx(5.0)

    def test_faster_climb_has_larger_area(self):
        fast = series("fast", [(0, 0), (2, 10), (10, 10)])
        slow = series("slow", [(0, 0), (8, 10), (10, 10)])
        assert area_under_curve(fast) > area_under_curve(slow)

    def test_single_point(self):
        assert area_under_curve(series("a", [(3, 7)])) == 7.0


class TestCrossoverPoints:
    def test_single_crossover(self):
        a = series("a", [(0, 0), (5, 5), (10, 10)])
        b = series("b", [(0, 3), (5, 4), (10, 5)])
        assert crossover_points(a, b) == [5]

    def test_no_crossover(self):
        a = series("a", [(0, 5), (10, 15)])
        b = series("b", [(0, 3), (10, 10)])
        assert crossover_points(a, b) == []

    def test_disjoint_x_axes(self):
        a = series("a", [(0, 5), (2, 15)])
        b = series("b", [(1, 3), (3, 10)])
        assert crossover_points(a, b) == []

    def test_ties_not_counted(self):
        a = series("a", [(0, 5), (5, 7), (10, 9)])
        b = series("b", [(0, 5), (5, 7), (10, 9)])
        assert crossover_points(a, b) == []


class TestSpeedSummary:
    def test_summary_table(self):
        spec = tiny_spec()
        figure = FigureResult(
            figure_number=1,
            title="test",
            x_label="nb generations",
            series=(
                series("fast", [(0, 0), (4, 12), (20, 16)]),
                series("slow", [(0, 0), (16, 8), (20, 8)]),
            ),
            spec=spec,
            scale_name="tiny",
            seed=1,
        )
        text = speed_summary(figure, targets=(0.5,))
        assert "fast" in text and "slow" in text
        assert "x@50%" in text
        # fast reaches 8 (=50% of 16 routers) by x=4; slow at x=16.
        lines = {line.split()[0]: line for line in text.splitlines()[2:] if line}
        assert "4" in lines["fast"]
        assert "16" in lines["slow"]
        assert "AUC" in text
