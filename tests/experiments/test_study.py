"""Unit tests for the shared initializer study."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.figures import figure_from_study
from repro.experiments.study import run_distribution_study
from repro.experiments.tables import table_from_study
from repro.instances.catalog import tiny_spec

MICRO_SCALE = ExperimentScale(
    name="micro",
    population_size=6,
    n_generations=4,
    ns_phases=4,
    ns_candidates=3,
    record_step=2,
)


@pytest.fixture(scope="module")
def study():
    return run_distribution_study(
        "normal",
        scale=MICRO_SCALE,
        seed=5,
        spec=tiny_spec("normal"),
        methods=("random", "near", "hotspot"),
    )


class TestStudy:
    def test_entries_per_method(self, study):
        assert [entry.method for entry in study.methods] == [
            "random",
            "near",
            "hotspot",
        ]

    def test_method_lookup(self, study):
        assert study.method("near").method == "near"
        with pytest.raises(KeyError):
            study.method("bogus")

    def test_series_covers_generations(self, study):
        for entry in study.methods:
            generations = [g for g, _ in entry.series]
            assert generations[0] == 0
            assert generations[-1] == MICRO_SCALE.n_generations

    def test_metrics_bounded(self, study):
        spec = study.spec
        for entry in study.methods:
            assert 0 <= entry.giant_standalone <= spec.n_routers
            assert 0 <= entry.giant_by_ga <= spec.n_routers
            assert 0 <= entry.coverage_by_ga <= spec.n_clients

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            run_distribution_study("zipf", scale=MICRO_SCALE)


class TestSharedViews:
    def test_table_and_figure_agree(self, study):
        """Table k and Figure k must be views of the same runs."""
        table = table_from_study(study)
        figure = figure_from_study(study)
        for row in table.rows:
            series = figure.series_by_label(row.method)
            # Final plotted giant equals the table's GA column: same run.
            assert series.final_giant == row.giant_by_ga

    def test_provenance_propagates(self, study):
        table = table_from_study(study)
        figure = figure_from_study(study)
        assert table.seed == figure.seed == study.seed
        assert table.scale_name == figure.scale_name == "micro"
        assert table.spec == figure.spec == study.spec
