"""Unit tests for the parameter sweeps."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.sweeps import (
    format_sweep,
    sweep_radio_range,
    sweep_router_count,
)
from repro.instances.catalog import tiny_spec

MICRO_SCALE = ExperimentScale(
    name="micro",
    population_size=6,
    n_generations=4,
    ns_phases=4,
    ns_candidates=4,
    record_step=2,
)


class TestRouterCountSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return sweep_router_count(
            tiny_spec(), counts=(4, 8, 12), scale=MICRO_SCALE, seed=2
        )

    def test_one_point_per_count(self, result):
        assert result.parameters() == [4.0, 8.0, 12.0]

    def test_giants_bounded_by_count(self, result):
        for point in result.points:
            n = int(point.parameter)
            assert 1 <= point.standalone_giant <= n
            assert 1 <= point.swap_giant <= n
            assert 1 <= point.random_giant <= n

    def test_formatting(self, result):
        text = format_sweep(result)
        assert "n_routers" in text
        assert "swap" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            sweep_router_count(tiny_spec(), counts=(), scale=MICRO_SCALE)
        with pytest.raises(ValueError):
            sweep_router_count(tiny_spec(), counts=(0,), scale=MICRO_SCALE)


class TestRadioRangeSweep:
    def test_stronger_radios_do_not_hurt_standalone(self):
        result = sweep_radio_range(
            tiny_spec(), max_radii=(4.0, 12.0), scale=MICRO_SCALE, seed=3
        )
        weak, strong = result.points
        # Same placement seed, larger radii: links can only be added.
        assert strong.standalone_giant >= weak.standalone_giant

    def test_validation(self):
        with pytest.raises(ValueError):
            sweep_radio_range(tiny_spec(), max_radii=(), scale=MICRO_SCALE)
        with pytest.raises(ValueError):
            sweep_radio_range(
                tiny_spec(), max_radii=(0.5,), scale=MICRO_SCALE
            )
