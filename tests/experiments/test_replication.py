"""Unit tests for the multi-seed replication harness."""

from __future__ import annotations

import pytest

from repro.experiments.replication import (
    ReplicatedMetric,
    format_replication,
    replicate_movements,
    replicate_standalone,
)
from repro.instances.catalog import tiny_spec


class TestReplicatedMetric:
    def test_statistics(self):
        metric = ReplicatedMetric((1.0, 2.0, 3.0))
        assert metric.mean == pytest.approx(2.0)
        assert metric.std == pytest.approx(1.0)
        assert metric.minimum == 1.0
        assert metric.maximum == 3.0
        assert metric.n_seeds == 3

    def test_single_value_std_zero(self):
        assert ReplicatedMetric((4.0,)).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedMetric(())

    def test_str_format(self):
        assert "+/-" in str(ReplicatedMetric((1.0, 3.0)))


class TestReplicateStandalone:
    @pytest.fixture(scope="class")
    def results(self):
        return replicate_standalone(
            tiny_spec(), n_seeds=4, methods=("random", "near", "hotspot")
        )

    def test_all_methods_covered(self, results):
        assert set(results) == {"random", "near", "hotspot"}

    def test_metrics_present_and_bounded(self, results):
        spec = tiny_spec()
        for metrics in results.values():
            assert set(metrics) == {"giant", "coverage", "fitness"}
            assert metrics["giant"].n_seeds == 4
            assert 0 <= metrics["giant"].minimum
            assert metrics["giant"].maximum <= spec.n_routers
            assert metrics["coverage"].maximum <= spec.n_clients

    def test_seed_variation_exists_for_random(self, results):
        # Random placement across 4 seeds almost surely varies.
        assert results["random"]["fitness"].std >= 0.0

    def test_invalid_seed_count(self):
        with pytest.raises(ValueError):
            replicate_standalone(tiny_spec(), n_seeds=0)

    def test_formatting(self, results):
        text = format_replication(results, "stand-alone replication")
        assert "stand-alone replication" in text
        assert "random" in text
        assert "+/-" in text


class TestReplicateMovements:
    def test_swap_and_random_compared(self):
        results = replicate_movements(
            tiny_spec(), n_seeds=2, n_candidates=4, max_phases=4
        )
        assert set(results) == {"Swap", "Random"}
        for metrics in results.values():
            assert metrics["giant"].n_seeds == 2
            assert metrics["giant"].maximum <= tiny_spec().n_routers

    def test_invalid_seed_count(self):
        with pytest.raises(ValueError):
            replicate_movements(tiny_spec(), n_seeds=-1)
