"""Integration tests: table and figure pipelines on tiny instances.

These run the real experiment code end-to-end, just at miniature scale
(8-individual GA, a handful of generations) so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.adhoc.registry import PAPER_METHOD_ORDER
from repro.experiments.config import ExperimentScale
from repro.experiments.figures import run_ga_figure, run_ns_figure
from repro.experiments.reporting import (
    figure_to_csv,
    format_figure,
    format_table,
    table_to_csv,
)
from repro.experiments.runner import run_all
from repro.experiments.tables import run_table
from repro.instances.catalog import tiny_spec

TINY_SCALE = ExperimentScale(
    name="tiny",
    population_size=8,
    n_generations=6,
    ns_phases=5,
    ns_candidates=4,
    record_step=2,
)


@pytest.fixture(scope="module")
def table_result():
    return run_table(
        "normal", scale=TINY_SCALE, seed=3, spec=tiny_spec("normal")
    )


@pytest.fixture(scope="module")
def ga_figure():
    return run_ga_figure(
        "normal", scale=TINY_SCALE, seed=3, spec=tiny_spec("normal")
    )


@pytest.fixture(scope="module")
def ns_figure():
    return run_ns_figure(scale=TINY_SCALE, seed=3, spec=tiny_spec("normal"))


class TestRunTable:
    def test_all_methods_present_in_order(self, table_result):
        assert tuple(r.method for r in table_result.rows) == PAPER_METHOD_ORDER

    def test_metrics_within_bounds(self, table_result):
        spec = table_result.spec
        for row in table_result.rows:
            assert 0 <= row.giant_standalone <= spec.n_routers
            assert 0 <= row.giant_by_ga <= spec.n_routers
            assert 0 <= row.coverage_standalone <= spec.n_clients
            assert 0 <= row.coverage_by_ga <= spec.n_clients

    def test_ga_at_least_matches_standalone_giant(self, table_result):
        # The GA population contains stand-alone-like placements and is
        # elitist, so its best giant should not be dramatically worse.
        for row in table_result.rows:
            assert row.giant_by_ga >= 1

    def test_table_number_resolved(self, table_result):
        assert table_result.table_number == 1

    def test_row_lookup(self, table_result):
        assert table_result.row("hotspot").method == "hotspot"
        with pytest.raises(KeyError):
            table_result.row("bogus")

    def test_best_ga_method_is_a_method(self, table_result):
        assert table_result.best_ga_method() in PAPER_METHOD_ORDER

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            run_table("zipf", scale=TINY_SCALE)

    def test_formatting(self, table_result):
        text = format_table(table_result)
        assert "Table 1" in text
        assert "HotSpot" in text
        assert "Giant by GA" in text

    def test_csv(self, table_result):
        csv = table_to_csv(table_result)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("method,")
        assert len(lines) == 1 + len(PAPER_METHOD_ORDER)


class TestRunGaFigure:
    def test_one_series_per_method(self, ga_figure):
        assert {s.label for s in ga_figure.series} == set(PAPER_METHOD_ORDER)

    def test_series_aligned_with_generations(self, ga_figure):
        for series in ga_figure.series:
            assert series.x[0] == 0
            assert series.x[-1] == TINY_SCALE.n_generations
            assert all(
                0 <= g <= ga_figure.spec.n_routers for g in series.giant_sizes
            )

    def test_figure_number(self, ga_figure):
        assert ga_figure.figure_number == 1

    def test_ranking_sorted(self, ga_figure):
        ranking = ga_figure.ranking_by_final_giant()
        finals = [
            ga_figure.series_by_label(label).final_giant for label in ranking
        ]
        assert finals == sorted(finals, reverse=True)

    def test_series_lookup(self, ga_figure):
        series = ga_figure.series_by_label("random")
        assert series.label == "random"
        with pytest.raises(KeyError):
            ga_figure.series_by_label("bogus")
        assert series.value_at(0) == series.giant_sizes[0]
        with pytest.raises(KeyError):
            series.value_at(99999)

    def test_formatting(self, ga_figure):
        text = format_figure(ga_figure)
        assert "Figure 1" in text
        assert "nb generations" in text

    def test_csv(self, ga_figure):
        csv = figure_to_csv(ga_figure)
        header = csv.splitlines()[0]
        assert header.startswith("x,")
        assert "hotspot" in header


class TestRunNsFigure:
    def test_two_series(self, ns_figure):
        assert {s.label for s in ns_figure.series} == {"Random", "Swap"}

    def test_custom_movements(self):
        from repro.neighborhood.movements import RandomMovement, SwapMovement

        result = run_ns_figure(
            scale=TINY_SCALE,
            seed=3,
            spec=tiny_spec("normal"),
            movements={
                "Literal": SwapMovement(relocate=False),
                "Relocating": SwapMovement(relocate=True),
                "Baseline": RandomMovement(),
            },
        )
        assert {s.label for s in result.series} == {
            "Literal",
            "Relocating",
            "Baseline",
        }

    def test_phases_axis(self, ns_figure):
        for series in ns_figure.series:
            assert series.x[0] == 0
            assert series.x[-1] == TINY_SCALE.ns_phases

    def test_giant_monotone_not_required_but_bounded(self, ns_figure):
        for series in ns_figure.series:
            assert all(
                0 <= g <= ns_figure.spec.n_routers for g in series.giant_sizes
            )

    def test_figure_number(self, ns_figure):
        assert ns_figure.figure_number == 4

    def test_formatting(self, ns_figure):
        text = format_figure(ns_figure)
        assert "Figure 4" in text
        assert "nb phases" in text


class TestRunAll:
    def test_full_pipeline_on_tiny_specs(self):
        specs = {
            name: tiny_spec(name)
            for name in ("normal", "exponential", "weibull")
        }
        report = run_all(
            scale=TINY_SCALE,
            seed=5,
            distributions=("normal", "exponential"),
            specs=specs,
        )
        assert len(report.tables) == 2
        assert len(report.figures) == 3  # 2 GA figures + NS figure
        text = report.render_text()
        assert "Table 1" in text
        assert "Table 2" in text
        assert "Figure 4" in text

    def test_report_includes_convergence_analysis(self):
        specs = {"normal": tiny_spec("normal")}
        report = run_all(
            scale=TINY_SCALE, seed=5, distributions=("normal",), specs=specs
        )
        text = report.render_text()
        assert "Convergence analysis:" in text
        assert "AUC" in text
        assert "x@50%" in text

    def test_table_and_figure_share_runs(self):
        specs = {"normal": tiny_spec("normal")}
        report = run_all(
            scale=TINY_SCALE, seed=5, distributions=("normal",), specs=specs
        )
        table = report.tables[0]
        figure = report.figures[0]
        for row in table.rows:
            assert figure.series_by_label(row.method).final_giant == row.giant_by_ga

    def test_save_csvs(self, tmp_path):
        specs = {"normal": tiny_spec("normal")}
        report = run_all(
            scale=TINY_SCALE, seed=5, distributions=("normal",), specs=specs
        )
        written = report.save_csvs(tmp_path)
        assert all(path.exists() for path in written)
        names = {path.name for path in written}
        assert "table1_normal.csv" in names
        assert "figure1.csv" in names
        assert "figure4.csv" in names
