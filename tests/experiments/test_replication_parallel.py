"""Parallel replication must be bit-identical to the serial path.

The ``workers=`` fan-out only changes *where* each (method, seed) run
executes; every run's RNG key is computed in the parent, so the per-seed
values — and therefore every derived mean/std — must match the serial
results exactly.
"""

from __future__ import annotations

import pytest

from repro.experiments.replication import (
    replicate_movements,
    replicate_standalone,
)
from repro.instances.catalog import tiny_spec


def assert_identical_results(serial, parallel):
    assert serial.keys() == parallel.keys()
    for name in serial:
        assert serial[name].keys() == parallel[name].keys()
        for metric in serial[name]:
            assert serial[name][metric].values == parallel[name][metric].values


class TestParallelStandalone:
    def test_workers_match_serial_exactly(self):
        spec = tiny_spec(seed=11)
        methods = ("random", "hotspot", "diag")
        serial = replicate_standalone(spec, n_seeds=3, methods=methods)
        parallel = replicate_standalone(
            spec, n_seeds=3, methods=methods, workers=2
        )
        assert_identical_results(serial, parallel)

    def test_workers_one_is_serial(self):
        spec = tiny_spec(seed=4)
        serial = replicate_standalone(spec, n_seeds=2, methods=("random",))
        one = replicate_standalone(
            spec, n_seeds=2, methods=("random",), workers=1
        )
        assert_identical_results(serial, one)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            replicate_standalone(tiny_spec(), n_seeds=1, workers=0)


class TestParallelMovements:
    def test_workers_match_serial_exactly(self):
        spec = tiny_spec(seed=8)
        serial = replicate_movements(
            spec, n_seeds=2, n_candidates=4, max_phases=4
        )
        parallel = replicate_movements(
            spec, n_seeds=2, n_candidates=4, max_phases=4, workers=2
        )
        assert_identical_results(serial, parallel)
