"""End-to-end determinism: every pipeline reproduces exactly from a seed.

Reproducibility is a headline requirement for a reproduction package —
the same seed must give byte-identical artifacts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.figures import run_ns_figure
from repro.experiments.reporting import format_table
from repro.experiments.tables import run_table
from repro.instances.catalog import tiny_spec

MICRO_SCALE = ExperimentScale(
    name="micro",
    population_size=6,
    n_generations=4,
    ns_phases=4,
    ns_candidates=3,
    record_step=2,
)


class TestTableDeterminism:
    def test_same_seed_identical_table(self):
        kwargs = dict(scale=MICRO_SCALE, seed=7, spec=tiny_spec("normal"))
        first = run_table("normal", **kwargs)
        second = run_table("normal", **kwargs)
        assert first.rows == second.rows
        assert format_table(first) == format_table(second)

    def test_different_seed_differs(self):
        base = dict(scale=MICRO_SCALE, spec=tiny_spec("normal"))
        first = run_table("normal", seed=1, **base)
        second = run_table("normal", seed=2, **base)
        # GA randomness almost surely produces at least one different cell.
        assert first.rows != second.rows


class TestFigureDeterminism:
    def test_ns_figure_reproduces(self):
        kwargs = dict(scale=MICRO_SCALE, seed=9, spec=tiny_spec("normal"))
        first = run_ns_figure(**kwargs)
        second = run_ns_figure(**kwargs)
        for a, b in zip(first.series, second.series):
            assert a.label == b.label
            assert a.x == b.x
            assert a.giant_sizes == b.giant_sizes


class TestInstanceDeterminism:
    def test_instance_generation_is_pure(self):
        spec = tiny_spec("weibull", seed=123)
        instances = [spec.generate() for _ in range(3)]
        reference = instances[0]
        for other in instances[1:]:
            assert list(other.fleet.radii) == list(reference.fleet.radii)
            assert other.clients.cells() == reference.clients.cells()

    def test_rng_streams_do_not_leak_global_state(self):
        # Library code must never touch numpy's global RNG.
        np.random.seed(4242)
        before = np.random.get_state()[1][:5].copy()
        run_table(
            "normal", scale=MICRO_SCALE, seed=3, spec=tiny_spec("normal")
        )
        after = np.random.get_state()[1][:5]
        assert list(before) == list(after)
