"""The solver registry: one name space for every optimization family."""

from __future__ import annotations

import pytest

from repro.adhoc.registry import available_methods
from repro.neighborhood.registry import available_movements
from repro.solvers import (
    available_solvers,
    make_solver,
    register_solver_family,
    solver_families,
)
from repro.solvers.adapters import (
    AdHocSolver,
    AnnealingSolver,
    GeneticSolver,
    MultiStartSolver,
    NeighborhoodSolver,
    TabuSolver,
)


class TestFamilies:
    def test_all_families_registered(self):
        assert set(solver_families()) == {
            "adhoc", "search", "annealing", "tabu", "multistart", "ga",
        }

    def test_every_spec_names_family_and_variant(self):
        for spec in available_solvers():
            family, _, variant = spec.partition(":")
            assert family in solver_families()
            assert variant

    def test_spec_count_covers_every_variant(self):
        n_methods = len(available_methods())
        n_movements = len(available_movements())
        # adhoc + ga enumerate methods; the four movement families
        # enumerate movements.
        assert len(available_solvers()) == 2 * n_methods + 4 * n_movements

    def test_duplicate_family_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_solver_family(
                "adhoc", lambda v: None, available_methods, "hotspot", "dup"
            )


class TestMakeSolver:
    @pytest.mark.parametrize(
        "spec, adapter",
        [
            ("adhoc:hotspot", AdHocSolver),
            ("search:swap", NeighborhoodSolver),
            ("annealing:random", AnnealingSolver),
            ("tabu:swap-literal", TabuSolver),
            ("multistart:combined", MultiStartSolver),
            ("ga:corners", GeneticSolver),
        ],
    )
    def test_resolves_spec(self, spec, adapter):
        solver = make_solver(spec)
        assert isinstance(solver, adapter)
        assert solver.name == spec

    @pytest.mark.parametrize(
        "family, expected",
        [
            ("adhoc", "adhoc:hotspot"),
            ("search", "search:swap"),
            ("annealing", "annealing:swap"),
            ("tabu", "tabu:swap"),
            ("multistart", "multistart:swap"),
            ("ga", "ga:hotspot"),
        ],
    )
    def test_bare_family_uses_default_variant(self, family, expected):
        assert make_solver(family).name == expected

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown solver family"):
            make_solver("quantum:swap")

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown search variant"):
            make_solver("search:teleport")

    def test_kwargs_reach_adapter(self):
        solver = make_solver("search:swap", n_candidates=5, max_phases=9)
        assert solver.n_candidates == 5
        assert solver.max_phases == 9

    def test_every_listed_spec_instantiates(self):
        for spec in available_solvers():
            assert make_solver(spec).name == spec
