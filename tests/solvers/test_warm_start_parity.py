"""Warm-start parity: warm on an unchanged problem == the cold run.

The solver contract splits every seed into an *init* stream and a *run*
stream (``solver_streams``).  A cold solve draws its initial placement
from the init stream; a warm solve skips that draw.  Therefore passing
the exact placement the cold run would have drawn
(:meth:`_InitializedSolver.initial_placement`) as ``warm_start`` must
reproduce the cold run **bit-for-bit** — same best fitness, same best
placement, same evaluation count, same trace — for every search family.

This is the contract that makes the dynamic-scenario speedup trustworthy:
a warm start changes *where the search begins*, never *how it searches*.
"""

from __future__ import annotations

import pytest

from repro.solvers import make_solver

#: The three warm-startable search families of the satellite requirement
#: (best-neighbor search, simulated annealing, tabu search), across
#: movements, plus the GA through its warm-injection initializer.
PARITY_SPECS = (
    "search:swap",
    "search:random",
    "search:combined",
    "annealing:swap",
    "annealing:random",
    "tabu:swap",
    "tabu:random",
)


def _small(spec: str, **extra):
    """The spec's solver with a small per-phase effort knob."""
    knob = (
        {"moves_per_phase": 6}
        if spec.startswith("annealing")
        else {"n_candidates": 6}
    )
    return make_solver(spec, **knob, **extra)


@pytest.mark.parametrize("spec", PARITY_SPECS)
@pytest.mark.parametrize("seed", [0, 7, 20090629])
def test_warm_equals_cold_on_unchanged_problem(tiny_problem, spec, seed):
    solver = _small(spec)
    cold = solver.solve(tiny_problem, seed=seed, budget=6)
    warm = solver.solve(
        tiny_problem,
        seed=seed,
        budget=6,
        warm_start=solver.initial_placement(tiny_problem, seed),
    )
    assert warm.warm_started and not cold.warm_started
    assert warm.best.fitness == cold.best.fitness
    assert warm.best.placement.cells == cold.best.placement.cells
    assert warm.best.metrics == cold.best.metrics
    assert warm.n_evaluations == cold.n_evaluations
    assert warm.n_phases == cold.n_phases
    if cold.trace is not None:
        assert len(warm.trace) == len(cold.trace)
        assert all(
            a.as_dict() == b.as_dict() for a, b in zip(warm.trace, cold.trace)
        )


@pytest.mark.parametrize("spec", ["annealing:swap", "tabu:swap"])
def test_parity_holds_with_engine_cache(tiny_problem, spec):
    """A donated incumbent cache is a perf hint, never a result change."""
    solver = _small(spec)
    donor = solver.solve(tiny_problem, seed=3, budget=4)
    cold = solver.solve(tiny_problem, seed=11, budget=6)
    warm = solver.solve(
        tiny_problem,
        seed=11,
        budget=6,
        warm_start=solver.initial_placement(tiny_problem, 11),
        engine_cache=donor.engine_cache,
    )
    assert warm.best.fitness == cold.best.fitness
    assert warm.best.placement.cells == cold.best.placement.cells
    assert warm.n_evaluations == cold.n_evaluations


@pytest.mark.parametrize("spec", ["search:swap", "annealing:swap", "tabu:swap"])
def test_parity_on_sparse_engine(tiny_problem, spec):
    solver = _small(spec)
    cold = solver.solve(tiny_problem, seed=5, budget=4, engine="sparse")
    warm = solver.solve(
        tiny_problem,
        seed=5,
        budget=4,
        engine="sparse",
        warm_start=solver.initial_placement(tiny_problem, 5),
    )
    assert warm.best.fitness == cold.best.fitness
    assert warm.best.placement.cells == cold.best.placement.cells
    assert warm.n_evaluations == cold.n_evaluations


def test_ga_warm_run_reproducible_and_stream_aligned(tiny_problem):
    """GA warm runs share every draw with cold; only chromosome 0 differs.

    Exact equality is not expected (the warm individual changes
    selection pressure), but the run must stay deterministic and the
    evaluation count identical — the streams may not shift.
    """
    solver = make_solver("ga:random", population_size=6)
    cold = solver.solve(tiny_problem, seed=13, budget=3)
    warm_placement = cold.best.placement
    warm_a = solver.solve(
        tiny_problem, seed=13, budget=3, warm_start=warm_placement
    )
    warm_b = solver.solve(
        tiny_problem, seed=13, budget=3, warm_start=warm_placement
    )
    assert warm_a.best.fitness == warm_b.best.fitness
    assert warm_a.n_evaluations == cold.n_evaluations
