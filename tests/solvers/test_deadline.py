"""Deadline semantics across every registered solver family.

The cooperative cancellation contract every ``Solver.solve`` honors:

* ``deadline=None`` and a never-firing deadline are **bit-identical**
  to each other — the checks consume no randomness.
* An already-expired deadline still returns a **fully evaluated
  incumbent** (``n_evaluations > 0``, finite fitness) with
  ``stopped_by`` set — mask-out-and-finish, never an exception or a
  half-built result.
* A deadline firing mid-run in :class:`MultiChainSearch` masks the
  still-active chains without touching converged siblings' results.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.anytime import CancelToken, Deadline, SimulatedClock, SteppingClock
from repro.neighborhood.movements import SwapMovement
from repro.neighborhood.multichain import MultiChainSearch, chain_generators
from repro.core.solution import Placement
from repro.solvers import make_solver, solver_families

#: One representative spec per registered family, with effort knobs
#: small enough that the whole matrix stays fast.
FAMILY_SPECS = {
    "adhoc": ("adhoc:random", {}),
    "search": ("search:swap", {"n_candidates": 4}),
    "annealing": ("annealing:swap", {"moves_per_phase": 4}),
    "tabu": ("tabu:swap", {"n_candidates": 4}),
    "multistart": ("multistart:swap", {"n_candidates": 4, "n_restarts": 2}),
    "ga": ("ga:random", {}),
}

BUDGETS = {
    "adhoc": None, "search": 4, "annealing": 4, "tabu": 4,
    "multistart": 4, "ga": 3,
}


def fingerprint(result):
    return (
        tuple(map(tuple, result.best.placement.positions_array())),
        result.best.fitness,
        result.n_evaluations,
        result.n_phases,
    )


def test_every_family_is_covered():
    assert set(FAMILY_SPECS) == set(solver_families())


@pytest.mark.parametrize("family", sorted(FAMILY_SPECS))
class TestDeadlineContract:
    def _solve(self, family, problem, deadline):
        spec, kwargs = FAMILY_SPECS[family]
        solver = make_solver(spec, **kwargs)
        return solver.solve(
            problem, seed=13, budget=BUDGETS[family], deadline=deadline
        )

    def test_never_firing_deadline_is_bit_identical(self, family, tiny_problem):
        bare = self._solve(family, tiny_problem, None)
        guarded = self._solve(family, tiny_problem, Deadline.after(1e9))
        assert fingerprint(bare) == fingerprint(guarded)
        assert bare.stopped_by is None
        assert guarded.stopped_by is None

    def test_expired_deadline_returns_valid_incumbent(self, family, tiny_problem):
        clock = SimulatedClock()
        expired = Deadline.after(1.0, clock=clock)
        clock.advance(2.0)
        result = self._solve(family, tiny_problem, expired)
        assert result.n_evaluations > 0
        assert math.isfinite(result.best.fitness)
        assert len(result.best.placement) == tiny_problem.n_routers
        if family == "adhoc":
            # Constructive build: one atomic place-and-evaluate that
            # even an expired deadline must allow.
            assert result.stopped_by is None
        else:
            assert result.stopped_by == "deadline"
            assert result.n_phases == 0

    def test_cancelled_token_reports_cancelled(self, family, tiny_problem):
        token = CancelToken()
        token.cancel()
        result = self._solve(
            family, tiny_problem, Deadline.cancellable(token)
        )
        assert result.n_evaluations > 0
        if family != "adhoc":
            assert result.stopped_by == "cancelled"


class TestBatchDeadline:
    def test_solve_batch_accepts_shared_deadline(self, tiny_problem):
        solver = make_solver("search:swap", n_candidates=4)
        bare = solver.solve_batch(tiny_problem, seeds=[1, 2], budget=3)
        guarded = solver.solve_batch(
            tiny_problem, seeds=[1, 2], budget=3,
            deadline=Deadline.after(1e9),
        )
        assert [fingerprint(r) for r in bare] == [
            fingerprint(r) for r in guarded
        ]

    def test_expired_deadline_masks_every_chain(self, tiny_problem):
        solver = make_solver("search:swap", n_candidates=4)
        clock = SimulatedClock()
        expired = Deadline.after(1.0, clock=clock)
        clock.advance(5.0)
        results = solver.solve_batch(
            tiny_problem, seeds=[1, 2, 3], budget=3, deadline=expired
        )
        assert len(results) == 3
        for result in results:
            assert result.stopped_by == "deadline"
            assert result.n_evaluations > 0


class TestMultiChainMasking:
    def test_mid_run_firing_masks_active_chains_only(self, tiny_problem):
        """A deadline firing mid-lockstep masks exactly the still-active
        chains; their best-so-far incumbents and traces stay intact."""
        search = MultiChainSearch(
            SwapMovement(), n_candidates=4, max_phases=12
        )
        rngs = chain_generators(5, 3)
        initials = [
            Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
            for rng in rngs
        ]
        # The run polls the deadline once per lockstep phase and the
        # stepping clock ticks once per read: constructing the deadline
        # reads 0.0, so a 2.5s budget lets polls at 1.0 and 2.0 pass
        # and fires on the third poll — two full phases run.
        deadline = Deadline.after(2.5, clock=SteppingClock(dt=1.0))
        results = search.run(tiny_problem, initials, rngs, deadline=deadline)

        assert len(results) == 3
        for result in results:
            assert result.stopped_by == "deadline"
            assert result.n_phases <= 2
            assert math.isfinite(result.best.fitness)
            # The trace is a well-formed prefix: one record per executed
            # phase plus the initial evaluation, best matches its peak.
            fitnesses = [record.fitness for record in result.trace.records]
            assert len(fitnesses) == result.n_phases + 1
            assert result.best.fitness == max(fitnesses)

    def test_masked_run_matches_unbounded_prefix(self, tiny_problem):
        """The masked chains' incumbents equal the unbounded run's state
        at the same phase — truncation, not perturbation."""
        def portfolio(deadline):
            search = MultiChainSearch(
                SwapMovement(), n_candidates=4, max_phases=12
            )
            rngs = chain_generators(9, 2)
            initials = [
                Placement.random(
                    tiny_problem.grid, tiny_problem.n_routers, rng
                )
                for rng in rngs
            ]
            return search.run(
                tiny_problem, initials, rngs, deadline=deadline
            )

        full = portfolio(None)
        masked = portfolio(Deadline.after(2.5, clock=SteppingClock(dt=1.0)))
        for complete, truncated in zip(full, masked):
            n = truncated.n_phases
            full_curve = [r.fitness for r in complete.trace.records]
            cut_curve = [r.fitness for r in truncated.trace.records]
            assert cut_curve == full_curve[: n + 1]

    def test_converged_siblings_keep_their_results(self, tiny_problem):
        """Chains that converge before the deadline fires are untouched:
        ``stopped_by`` stays None and their traces are complete."""
        search = MultiChainSearch(
            SwapMovement(), n_candidates=4, max_phases=40, stall_phases=1
        )
        rngs = chain_generators(2, 3)
        initials = [
            Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
            for rng in rngs
        ]
        # Generous stepping budget: the stall rule retires chains at
        # their own pace well before the deadline fires.
        deadline = Deadline.after(1e6, clock=SteppingClock(dt=1.0))
        results = search.run(tiny_problem, initials, rngs, deadline=deadline)
        assert all(result.stopped_by is None for result in results)

        # And the whole run matches the no-deadline portfolio exactly.
        rngs = chain_generators(2, 3)
        initials = [
            Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
            for rng in rngs
        ]
        bare = search.run(tiny_problem, initials, rngs)
        assert [fingerprint(r) for r in bare] == [
            fingerprint(r) for r in results
        ]

    def test_deadline_forces_serial_lockstep(self, tiny_problem):
        """``workers`` is ignored under a deadline (tokens cannot cross
        processes) — results still match the serial run bit-for-bit."""
        def portfolio(**kwargs):
            search = MultiChainSearch(SwapMovement(), n_candidates=4,
                                      max_phases=6)
            rngs = chain_generators(4, 2)
            initials = [
                Placement.random(
                    tiny_problem.grid, tiny_problem.n_routers, rng
                )
                for rng in rngs
            ]
            return search.run(tiny_problem, initials, rngs, **kwargs)

        serial = portfolio()
        with_deadline = portfolio(
            workers=2, deadline=Deadline.after(1e9)
        )
        assert [fingerprint(r) for r in serial] == [
            fingerprint(r) for r in with_deadline
        ]
