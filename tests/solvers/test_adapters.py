"""Adapter behavior under the uniform solve contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grid import GridArea
from repro.core.solution import Placement
from repro.solvers import make_solver

ALL_FAMILY_SPECS = (
    "adhoc:hotspot",
    "search:swap",
    "annealing:swap",
    "tabu:swap",
    "multistart:swap",
    "ga:hotspot",
)


class TestSolveContract:
    @pytest.mark.parametrize("spec", ALL_FAMILY_SPECS)
    def test_solve_returns_uniform_result(self, tiny_problem, spec):
        kwargs = {"population_size": 6} if spec.startswith("ga") else {}
        if spec.startswith("multistart"):
            kwargs["n_restarts"] = 3
        result = make_solver(spec, **kwargs).solve(
            tiny_problem, seed=5, budget=3
        )
        assert result.solver == spec
        assert result.n_evaluations > 0
        assert result.best.placement is not None
        assert 0.0 <= result.best.fitness <= 1.0
        assert not result.warm_started
        assert spec.split(":")[0] in result.summary()

    @pytest.mark.parametrize("spec", ALL_FAMILY_SPECS)
    def test_same_seed_same_result(self, tiny_problem, spec):
        kwargs = {"population_size": 6} if spec.startswith("ga") else {}
        if spec.startswith("multistart"):
            kwargs["n_restarts"] = 3
        solver = make_solver(spec, **kwargs)
        first = solver.solve(tiny_problem, seed=9, budget=3)
        second = solver.solve(tiny_problem, seed=9, budget=3)
        assert first.best.fitness == second.best.fitness
        assert first.best.placement.cells == second.best.placement.cells
        assert first.n_evaluations == second.n_evaluations

    @pytest.mark.parametrize("spec", ALL_FAMILY_SPECS)
    def test_invalid_budget_rejected(self, tiny_problem, spec):
        with pytest.raises(ValueError, match="budget"):
            make_solver(spec).solve(tiny_problem, seed=0, budget=0)

    def test_budget_controls_phases(self, tiny_problem):
        result = make_solver("tabu:swap").solve(tiny_problem, seed=1, budget=5)
        assert result.n_phases == 5

    def test_budget_controls_generations(self, tiny_problem):
        result = make_solver("ga:random", population_size=6).solve(
            tiny_problem, seed=1, budget=4
        )
        assert result.n_phases == 4

    @pytest.mark.parametrize("engine", ["dense", "sparse"])
    def test_forced_engine_matches_auto(self, tiny_problem, engine):
        solver = make_solver("search:swap", n_candidates=4)
        auto = solver.solve(tiny_problem, seed=3, budget=3, engine="auto")
        forced = solver.solve(tiny_problem, seed=3, budget=3, engine=engine)
        assert forced.best.fitness == auto.best.fitness
        assert forced.best.placement.cells == auto.best.placement.cells
        assert forced.n_evaluations == auto.n_evaluations


class TestWarmStartValidation:
    def test_wrong_router_count_rejected(self, tiny_problem, rng):
        bad = Placement.random(tiny_problem.grid, tiny_problem.n_routers - 1, rng)
        with pytest.raises(ValueError, match="warm start places"):
            make_solver("search:swap").solve(
                tiny_problem, seed=0, warm_start=bad
            )

    def test_off_grid_cells_rejected(self, tiny_problem, rng):
        huge = GridArea(512, 512)
        bad = Placement.from_cells(
            huge,
            [(500, 500 - i) for i in range(tiny_problem.n_routers)],
        )
        with pytest.raises(ValueError, match="outside"):
            make_solver("tabu:swap").solve(tiny_problem, seed=0, warm_start=bad)

    def test_adhoc_refuses_warm_start(self, tiny_problem, rng):
        solver = make_solver("adhoc:hotspot")
        assert not solver.supports_warm_start
        warm = Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        with pytest.raises(ValueError, match="does not accept a warm start"):
            solver.solve(tiny_problem, seed=2, warm_start=warm)
        result = solver.solve(tiny_problem, seed=2)
        assert not result.warm_started
        assert result.n_evaluations == 1

    def test_warm_started_flag_set(self, tiny_problem, rng):
        warm = Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        result = make_solver("annealing:swap").solve(
            tiny_problem, seed=2, budget=3, warm_start=warm
        )
        assert result.warm_started
        assert "warm start" in result.summary()


class TestWarmStartSteering:
    """Warm starts actually steer the run, not just a flag."""

    def test_ga_warm_individual_joins_population(self, tiny_problem, rng):
        # A warm GA run must contain the warm chromosome's influence: with
        # zero generations of budget impossible, use 1 generation and
        # check the run differs from cold while staying deterministic.
        solver = make_solver("ga:random", population_size=6)
        warm = Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        cold = solver.solve(tiny_problem, seed=4, budget=2)
        warmed = solver.solve(tiny_problem, seed=4, budget=2, warm_start=warm)
        again = solver.solve(tiny_problem, seed=4, budget=2, warm_start=warm)
        assert warmed.warm_started
        assert warmed.best.fitness == again.best.fitness
        # The warm individual can only help (elitism keeps the best).
        assert warmed.best.fitness >= min(cold.best.fitness, warmed.best.fitness)

    def test_multistart_warm_replaces_chain_zero(self, tiny_problem, rng):
        solver = make_solver("multistart:swap", n_restarts=3, n_candidates=4)
        warm = Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        result = solver.solve(tiny_problem, seed=4, budget=3, warm_start=warm)
        assert result.warm_started

    @pytest.mark.parametrize("spec", ["annealing:swap", "tabu:swap"])
    def test_exported_cache_describes_best_placement(self, tiny_problem, spec):
        """The handoff contract: the cache is keyed to the BEST placement.

        Tabu keeps walking after its best, so exporting the final
        incumbent would hand the next step a cache that never validates
        against the warm start; the snapshot-on-improvement rule keeps
        cache.positions == best placement.
        """
        result = make_solver(spec, track_cache=True).solve(
            tiny_problem, seed=3, budget=5
        )
        cache = result.engine_cache
        assert cache is not None
        assert np.array_equal(
            cache.positions, result.best.placement.positions_array()
        )

    def test_engine_cache_does_not_change_results(self, tiny_problem):
        solver = make_solver("tabu:swap", n_candidates=4, track_cache=True)
        first = solver.solve(tiny_problem, seed=6, budget=4)
        assert first.engine_cache is not None
        warm = solver.solve(
            tiny_problem,
            seed=6,
            budget=4,
            warm_start=solver.initial_placement(tiny_problem, 6),
            engine_cache=first.engine_cache,
        )
        cold = solver.solve(tiny_problem, seed=6, budget=4)
        assert warm.best.fitness == cold.best.fitness
        assert warm.best.placement.cells == cold.best.placement.cells
        assert warm.n_evaluations == cold.n_evaluations


class TestSolveBatch:
    """solve_batch: the serial loop and the lockstep override agree."""

    BATCH_SPECS = (
        ("search:swap", {"n_candidates": 4}),
        ("search:random", {"n_candidates": 4}),
        ("search:swap", {"n_candidates": 4, "stall_phases": 2}),
        ("tabu:swap", {"n_candidates": 4}),
        ("annealing:swap", {"moves_per_phase": 4}),
        ("adhoc:hotspot", {}),
    )

    @pytest.mark.parametrize("spec,kwargs", BATCH_SPECS)
    def test_batch_matches_serial_solves(self, tiny_problem, spec, kwargs):
        solver = make_solver(spec, **kwargs)
        seeds = [3, 4, 5]
        serial = [
            solver.solve(tiny_problem, seed=seed, budget=4) for seed in seeds
        ]
        batch = solver.solve_batch(tiny_problem, seeds, budget=4)
        for a, b in zip(serial, batch):
            assert a.best.fitness == b.best.fitness
            assert a.best.placement.cells == b.best.placement.cells
            assert a.n_evaluations == b.n_evaluations
            assert a.n_phases == b.n_phases
            assert a.warm_started == b.warm_started

    def test_batch_traces_match_serial(self, tiny_problem):
        solver = make_solver("search:swap", n_candidates=4)
        seeds = [np.random.SeedSequence(s) for s in (1, 2)]
        serial = [
            solver.solve(
                tiny_problem, seed=np.random.SeedSequence(s), budget=4
            )
            for s in (1, 2)
        ]
        batch = solver.solve_batch(tiny_problem, seeds, budget=4)
        for a, b in zip(serial, batch):
            assert [
                (r.phase, r.fitness, r.improved) for r in a.trace
            ] == [(r.phase, r.fitness, r.improved) for r in b.trace]

    def test_batch_threads_per_seed_warm_starts(self, tiny_problem):
        solver = make_solver("search:swap", n_candidates=4)
        warm = solver.initial_placement(tiny_problem, 7)
        warm_starts = [warm, None, warm]
        seeds = [7, 8, 9]
        serial = [
            solver.solve(tiny_problem, seed=seed, budget=4, warm_start=start)
            for seed, start in zip(seeds, warm_starts)
        ]
        batch = solver.solve_batch(
            tiny_problem, seeds, budget=4, warm_starts=warm_starts
        )
        assert [r.warm_started for r in batch] == [True, False, True]
        for a, b in zip(serial, batch):
            assert a.best.fitness == b.best.fitness
            assert a.n_evaluations == b.n_evaluations

    def test_batch_validates_lengths(self, tiny_problem):
        solver = make_solver("search:swap", n_candidates=4)
        with pytest.raises(ValueError, match="at least one seed"):
            solver.solve_batch(tiny_problem, [])
        with pytest.raises(ValueError, match="warm starts"):
            solver.solve_batch(tiny_problem, [1, 2], warm_starts=[None])
        with pytest.raises(ValueError, match="engine caches"):
            solver.solve_batch(tiny_problem, [1, 2], engine_caches=[None])
