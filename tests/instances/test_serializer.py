"""Round-trip tests for JSON (de)serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.radio import CoverageRule, LinkRule
from repro.core.solution import Placement
from repro.instances.catalog import tiny_spec
from repro.instances.generator import InstanceSpec
from repro.instances.serializer import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_placement,
    placement_from_dict,
    placement_to_dict,
    save_instance,
    save_placement,
    spec_from_dict,
    spec_to_dict,
)


class TestInstanceRoundTrip:
    def test_dict_round_trip(self, tiny_problem):
        payload = instance_to_dict(tiny_problem)
        restored = instance_from_dict(payload)
        assert restored.grid == tiny_problem.grid
        assert list(restored.fleet.radii) == list(tiny_problem.fleet.radii)
        assert restored.clients.cells() == tiny_problem.clients.cells()
        assert restored.link_rule is tiny_problem.link_rule
        assert restored.coverage_rule is tiny_problem.coverage_rule

    def test_file_round_trip(self, tiny_problem, tmp_path):
        path = tmp_path / "instance.json"
        save_instance(tiny_problem, path)
        restored = load_instance(path)
        assert restored.n_routers == tiny_problem.n_routers
        # The file is valid, readable JSON.
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro.instance.v1"

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            instance_from_dict({"format": "other"})

    def test_rules_preserved(self):
        spec = tiny_spec()
        problem = spec.generate().with_link_rule(LinkRule.OVERLAP)
        problem = problem.with_coverage_rule(CoverageRule.ANY_ROUTER)
        restored = instance_from_dict(instance_to_dict(problem))
        assert restored.link_rule is LinkRule.OVERLAP
        assert restored.coverage_rule is CoverageRule.ANY_ROUTER


class TestSpecRoundTrip:
    def test_dict_round_trip(self):
        spec = InstanceSpec(
            name="demo",
            width=50,
            height=40,
            n_routers=7,
            n_clients=13,
            distribution="weibull",
            distribution_params={"shape": 0.9},
            min_radius=1.0,
            max_radius=3.0,
            link_rule=LinkRule.OVERLAP,
            coverage_rule=CoverageRule.ANY_ROUTER,
            seed=77,
        )
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            spec_from_dict({"format": "repro.instance.v1"})

    def test_round_trip_generates_identical_instance(self):
        spec = tiny_spec()
        restored = spec_from_dict(spec_to_dict(spec))
        a, b = spec.generate(), restored.generate()
        assert a.clients.cells() == b.clients.cells()
        assert list(a.fleet.radii) == list(b.fleet.radii)


class TestPlacementRoundTrip:
    def test_dict_round_trip(self, tiny_problem, rng):
        placement = Placement.random(
            tiny_problem.grid, tiny_problem.n_routers, rng
        )
        restored = placement_from_dict(placement_to_dict(placement))
        assert restored.cells == placement.cells
        assert restored.grid == placement.grid

    def test_file_round_trip(self, tiny_problem, rng, tmp_path):
        placement = Placement.random(
            tiny_problem.grid, tiny_problem.n_routers, rng
        )
        path = tmp_path / "placement.json"
        save_placement(placement, path)
        assert load_placement(path).cells == placement.cells

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            placement_from_dict({"format": "bogus"})

    def test_invalid_payload_caught_by_model(self):
        payload = {
            "format": "repro.placement.v1",
            "grid": {"width": 4, "height": 4},
            "cells": [[0, 0], [0, 0]],
        }
        with pytest.raises(ValueError, match="same cell"):
            placement_from_dict(payload)
