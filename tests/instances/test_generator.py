"""Unit tests for instance specs and the catalog."""

from __future__ import annotations

import pytest

from repro.core.radio import CoverageRule, LinkRule
from repro.instances.catalog import (
    PAPER_SEED,
    catalog,
    paper_exponential,
    paper_normal,
    paper_uniform,
    paper_weibull,
    tiny_spec,
)
from repro.instances.generator import InstanceSpec


class TestInstanceSpec:
    def test_generate_matches_spec(self):
        spec = InstanceSpec(name="t", width=20, height=24, n_routers=5, n_clients=9)
        problem = spec.generate()
        assert problem.grid.width == 20
        assert problem.grid.height == 24
        assert problem.n_routers == 5
        assert problem.n_clients == 9
        assert problem.link_rule is spec.link_rule
        assert problem.coverage_rule is spec.coverage_rule

    def test_radii_respect_profile(self):
        spec = InstanceSpec(name="t", min_radius=2.0, max_radius=3.0)
        problem = spec.generate()
        assert problem.fleet.radii.min() >= 2.0
        assert problem.fleet.radii.max() <= 3.0

    def test_deterministic_by_seed(self):
        spec = InstanceSpec(name="t", seed=11)
        a, b = spec.generate(), spec.generate()
        assert list(a.fleet.radii) == list(b.fleet.radii)
        assert a.clients.cells() == b.clients.cells()

    def test_different_seeds_differ(self):
        a = InstanceSpec(name="t", seed=1).generate()
        b = InstanceSpec(name="t", seed=2).generate()
        assert a.clients.cells() != b.clients.cells()

    def test_with_seed(self):
        spec = InstanceSpec(name="t", seed=1)
        assert spec.with_seed(9).seed == 9
        assert spec.seed == 1

    def test_with_distribution(self):
        spec = InstanceSpec(name="t").with_distribution("weibull", shape=0.9)
        assert spec.distribution == "weibull"
        assert spec.distribution_params == {"shape": 0.9}

    def test_validation(self):
        with pytest.raises(ValueError):
            InstanceSpec(name="t", n_routers=0)
        with pytest.raises(ValueError):
            InstanceSpec(name="t", n_clients=-1)

    def test_distribution_params_forwarded(self):
        spec = InstanceSpec(
            name="t",
            distribution="normal",
            distribution_params={"mean": 5.0, "std": 1.0},
            width=32,
            height=32,
        )
        problem = spec.generate()
        xs = problem.clients.positions[:, 0]
        assert xs.mean() < 16  # clustered near mean=5, not grid center

    def test_describe_mentions_key_facts(self):
        text = InstanceSpec(name="demo").describe()
        assert "demo" in text
        assert "64 routers" in text
        assert "128x128" in text


class TestCatalog:
    def test_paper_frame(self):
        for spec in catalog().values():
            assert (spec.width, spec.height) == (128, 128)
            assert spec.n_routers == 64
            assert spec.n_clients == 192
            assert spec.seed == PAPER_SEED
            assert spec.link_rule is LinkRule.BIDIRECTIONAL
            assert spec.coverage_rule is CoverageRule.GIANT_ONLY

    def test_normal_uses_paper_parameters(self):
        spec = paper_normal()
        assert spec.distribution == "normal"
        assert spec.distribution_params == {"mean": 64.0, "std": 12.8}

    def test_distributions_distinct(self):
        assert paper_exponential().distribution == "exponential"
        assert paper_weibull().distribution == "weibull"
        assert paper_uniform().distribution == "uniform"

    def test_catalog_keys(self):
        assert set(catalog()) == {"uniform", "normal", "exponential", "weibull"}

    def test_tiny_spec_is_small(self):
        spec = tiny_spec()
        assert spec.n_routers <= 16
        assert spec.width * spec.height <= 32 * 32
        spec.generate()  # must be generable
