"""The shared-memory broadcast codec: round trips, edges, collisions.

The codec's contract is narrow but absolute: an attached instance is
*equal* to the published one (same values, zero array copies), and every
failure mode — missing segment, colliding name, stale bytes — is either
survived or reported, never silently wrong.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

import repro.instances.shm as shm_mod
from repro.core.clients import ClientSet
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance
from repro.core.routers import MeshRouter, RouterFleet
from repro.instances.shm import (
    ArrayRef,
    BroadcastLost,
    attach_array,
    attach_problem,
    problem_nbytes,
    publish_array,
    publish_problem,
)


def _destroy(*segments) -> None:
    for shm in segments:
        if shm is None:
            continue
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass


@pytest.fixture
def published(tiny_problem):
    ref, segments = publish_problem(tiny_problem)
    yield tiny_problem, ref, segments
    _destroy(*segments)


class TestProblemRoundTrip:
    def test_attach_rebuilds_an_equal_instance(self, published):
        problem, ref, _ = published
        attached = attach_problem(ref)
        assert attached.grid.width == problem.grid.width
        assert attached.grid.height == problem.grid.height
        assert attached.link_rule == problem.link_rule
        assert attached.coverage_rule == problem.coverage_rule
        np.testing.assert_array_equal(attached.fleet.radii, problem.fleet.radii)
        np.testing.assert_array_equal(
            attached.clients.positions, problem.clients.positions
        )
        assert [c.cell for c in attached.clients] == [
            c.cell for c in problem.clients
        ]

    def test_attached_arrays_are_shared_readonly_views(self, published):
        _, ref, _ = published
        attached = attach_problem(ref)
        # Zero-copy: the hot arrays are backed by the mapped segments,
        # not reserialized copies...
        segments = attached._shm_segments
        assert len(segments) == 2
        # ...and read-only, so no worker can corrupt a shared payload.
        with pytest.raises(ValueError):
            attached.fleet.radii[0] = 99.0
        with pytest.raises(ValueError):
            attached.clients.positions[0, 0] = 99.0

    def test_handle_is_small_and_content_addressed(self, published):
        import pickle

        problem, ref, _ = published
        assert len(pickle.dumps(ref)) < 1024
        ref2, segments2 = publish_problem(problem)
        try:
            # Same content, same token — but fresh segments under fresh
            # names (the publisher, not the codec, is the dedupe layer).
            assert ref2.token == ref.token
            assert ref2.radii.name != ref.radii.name
        finally:
            _destroy(*segments2)

    def test_nbytes_accounts_both_payloads(self, published):
        problem, ref, _ = published
        assert problem_nbytes(problem) == ref.radii.nbytes + ref.positions.nbytes


class TestEdgeCases:
    def test_zero_client_instance_round_trips(self):
        fleet = RouterFleet(
            tuple(MeshRouter(router_id=i, radius=3.0) for i in range(4))
        )
        problem = ProblemInstance(
            grid=GridArea(16, 16), fleet=fleet, clients=ClientSet(())
        )
        ref, segments = publish_problem(problem)
        try:
            # An empty payload gets no segment (POSIX shm cannot be
            # zero-sized); the handle alone rebuilds it.
            assert ref.positions.name is None
            assert len(segments) == 1
            attached = attach_problem(ref)
            assert len(attached.clients) == 0
            assert attached.clients.positions.shape == (0, 2)
            np.testing.assert_array_equal(
                attached.fleet.radii, problem.fleet.radii
            )
        finally:
            _destroy(*segments)

    def test_non_contiguous_view_is_compacted(self):
        base = np.arange(64, dtype=np.float64).reshape(8, 8)
        view = base[::2, 1::3]
        assert not view.flags["C_CONTIGUOUS"]
        ref, shm = publish_array(view)
        try:
            assert ref.shape == view.shape
            attached, attached_shm = attach_array(ref)
            np.testing.assert_array_equal(attached, view)
            assert attached.flags["C_CONTIGUOUS"]
        finally:
            _destroy(shm)

    def test_empty_array_needs_no_segment(self):
        ref, shm = publish_array(np.zeros((0, 2)))
        assert shm is None and ref.name is None
        attached, attached_shm = attach_array(ref)
        assert attached_shm is None
        assert attached.shape == (0, 2)
        assert not attached.flags["WRITEABLE"]


class TestFailureModes:
    def test_attach_after_unlink_raises_broadcast_lost(self, tiny_problem):
        ref, segments = publish_problem(tiny_problem)
        _destroy(*segments)
        with pytest.raises(BroadcastLost) as excinfo:
            attach_problem(ref)
        assert excinfo.value.segment == ref.radii.name

    def test_publish_walks_past_a_colliding_name(self):
        # Occupy the exact name the next publish would pick (a stale
        # segment from a killed run, or a concurrent runtime that chose
        # the same digest prefix): publish must retry past it.
        array = np.arange(24, dtype=np.float64)
        digest = shm_mod._digest(np.ascontiguousarray(array).tobytes())
        blocked = (
            f"repro-{digest[:12]}-{os.getpid()}-{shm_mod._serial + 1}"
        )
        blocker = shared_memory.SharedMemory(
            name=blocked, create=True, size=8
        )
        try:
            ref, shm = publish_array(array)
            try:
                assert ref.name != blocked
                attached, _ = attach_array(ref)
                np.testing.assert_array_equal(attached, array)
            finally:
                _destroy(shm)
        finally:
            _destroy(blocker)

    def test_attach_refuses_mismatched_bytes(self):
        # A handle pointing at a segment with *different* content (the
        # misrouting a collision could cause) is rejected by the digest
        # check rather than silently returning wrong data.
        array = np.arange(16, dtype=np.float64)
        ref, shm = publish_array(array)
        try:
            stale = ArrayRef(
                name=ref.name,
                shape=ref.shape,
                dtype=ref.dtype,
                digest="0" * 20,
            )
            with pytest.raises(ValueError, match="different bytes"):
                attach_array(stale)
        finally:
            _destroy(shm)
