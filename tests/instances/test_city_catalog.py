"""The city-scale instance catalog and its end-to-end sparse path."""

from __future__ import annotations

import numpy as np

from repro.core.engine import select_engine
from repro.core.evaluation import Evaluator
from repro.core.solution import Placement
from repro.instances.catalog import (
    CITY_SEED,
    city_catalog,
    city_large,
    city_medium,
    city_spec,
)
from repro.neighborhood.movements import RandomMovement
from repro.neighborhood.search import NeighborhoodSearch


class TestCitySpecs:
    def test_named_specs(self):
        medium = city_medium()
        large = city_large()
        assert (medium.width, medium.height) == (512, 512)
        assert medium.n_routers == 2048 and medium.n_clients == 20_000
        assert large.n_routers == 4096 and large.n_clients == 50_000
        assert medium.seed == CITY_SEED
        assert city_catalog() == {
            "city-medium": city_medium(),
            "city-large": city_large(),
        }

    def test_city_specs_dispatch_sparse(self):
        # The selection heuristic needs only the spec's shape, not a
        # full generate: a scaled-down frame with the same density
        # profile already crosses the dense cell budget.
        problem = city_spec(1024, 4_000, seed=1).generate()
        assert select_engine(problem) == "sparse"

    def test_reproducible_generation(self):
        spec = city_spec(128, 1_000, width=256, height=256, seed=9)
        a = spec.generate()
        b = spec.generate()
        assert np.array_equal(a.fleet.radii, b.fleet.radii)
        assert np.array_equal(a.clients.positions, b.clients.positions)


class TestCityEndToEnd:
    def test_city_medium_neighborhood_search_on_sparse_engine(self):
        # Acceptance path: a city-scale *catalog* instance through the
        # paper's neighborhood search, with the engine auto-dispatched.
        problem = city_medium().generate()
        evaluator = Evaluator(problem)
        # "auto" promotes to compiled when the kernels built; the numpy
        # fallback for this instance is the sparse path.
        assert evaluator.engine in ("sparse", "compiled")
        rng = np.random.default_rng(CITY_SEED)
        initial = Placement.random(problem.grid, problem.n_routers, rng)
        search = NeighborhoodSearch(
            RandomMovement(), n_candidates=4, max_phases=2, stall_phases=None
        )
        outcome = search.run(evaluator, initial, rng)
        assert outcome.n_evaluations == evaluator.n_evaluations
        assert outcome.n_evaluations >= 1 + 2 * 1
        assert 0 < outcome.best.giant_size <= problem.n_routers
        assert 0 <= outcome.best.covered_clients <= problem.n_clients
        assert outcome.best.fitness > 0
