"""Stress and failure-injection tests.

Degenerate geometries (packed grids, 1-D grids, single cells), empty
client sets and saturated neighborhoods must never crash the search
stack — they either work or raise the documented ``ValueError``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adhoc import paper_methods
from repro.core.clients import ClientSet
from repro.core.evaluation import Evaluator
from repro.core.geometry import Point
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance
from repro.core.routers import RouterFleet
from repro.core.solution import Placement
from repro.genetic.engine import GAConfig, GeneticAlgorithm
from repro.genetic.initializers import RandomInitializer
from repro.neighborhood.movements import RandomMovement, SwapMovement
from repro.neighborhood.search import NeighborhoodSearch


def build_problem(width, height, radii, client_cells=()):
    return ProblemInstance(
        grid=GridArea(width, height),
        fleet=RouterFleet.from_radii(radii),
        clients=ClientSet.from_points(
            [Point(*c) for c in client_cells], grid=GridArea(width, height)
        ),
    )


class TestPackedGrid:
    """Every cell occupied: no movement has anywhere to go."""

    @pytest.fixture
    def packed(self):
        problem = build_problem(3, 3, [2.0] * 9, [(1, 1)])
        placement = Placement.from_cells(
            problem.grid, list(problem.grid.cells())
        )
        return problem, placement

    def test_evaluation_works(self, packed):
        problem, placement = packed
        evaluation = Evaluator(problem).evaluate(placement)
        assert evaluation.giant_size == 9  # everything adjacent

    def test_random_movement_search_survives(self, packed, rng):
        problem, placement = packed
        search = NeighborhoodSearch(
            RandomMovement(), n_candidates=4, max_phases=3
        )
        # No relocation exists on a packed grid: every phase is idle and
        # the incumbent survives unchanged.
        result = search.run(Evaluator(problem), placement, rng)
        assert result.best.placement.cells == placement.cells

    def test_swap_movement_search_survives(self, packed, rng):
        problem, placement = packed
        search = NeighborhoodSearch(
            SwapMovement(), n_candidates=4, max_phases=3
        )
        result = search.run(Evaluator(problem), placement, rng)
        assert result.best.giant_size == 9


class TestDegenerateGrids:
    def test_single_row_grid(self, rng):
        problem = build_problem(20, 1, [2.0, 2.0, 2.0], [(5, 0)])
        for method in paper_methods():
            placement = method.place(problem, rng)
            assert len(placement.occupied) == 3

    def test_single_column_grid(self, rng):
        problem = build_problem(1, 20, [2.0, 2.0], [(0, 3)])
        for method in paper_methods():
            placement = method.place(problem, rng)
            assert len(placement.occupied) == 2

    def test_single_cell_grid(self, rng):
        problem = build_problem(1, 1, [1.0], [(0, 0)])
        for method in paper_methods():
            placement = method.place(problem, rng)
            assert placement.cells == (Point(0, 0),)

    def test_single_router(self, rng):
        problem = build_problem(16, 16, [3.0], [(4, 4), (10, 10)])
        evaluation = Evaluator(problem).evaluate(
            Placement.from_cells(problem.grid, [Point(4, 4)])
        )
        assert evaluation.giant_size == 1
        assert evaluation.covered_clients == 1


class TestNoClients:
    def test_all_methods_place(self, rng):
        problem = build_problem(16, 16, [2.0] * 6)
        for method in paper_methods():
            placement = method.place(problem, rng)
            assert len(placement.occupied) == 6

    def test_search_optimizes_connectivity_only(self, rng):
        problem = build_problem(16, 16, [2.0] * 6)
        initial = Placement.random(problem.grid, 6, rng)
        result = NeighborhoodSearch(
            RandomMovement(), n_candidates=8, max_phases=15
        ).run(Evaluator(problem), initial, rng)
        # Coverage ratio is vacuous (1.0); fitness is driven by the giant.
        assert result.best.covered_clients == 0
        assert result.best.giant_size >= 1

    def test_ga_runs(self, rng):
        problem = build_problem(12, 12, [2.0] * 4)
        ga = GeneticAlgorithm(GAConfig(population_size=6, n_generations=4))
        result = ga.run(Evaluator(problem), RandomInitializer(), rng)
        assert result.best.metrics.coverage_ratio == 1.0


class TestManyClientsOneCell:
    def test_stacked_clients_counted_individually(self, rng):
        problem = build_problem(8, 8, [3.0], [(2, 2)] * 25)
        evaluation = Evaluator(problem).evaluate(
            Placement.from_cells(problem.grid, [Point(2, 2)])
        )
        assert evaluation.covered_clients == 25


class TestNearlyPackedGA:
    def test_ga_with_one_free_cell(self, rng):
        # 8 routers on a 3x3 grid: exactly one free cell for mutations.
        problem = build_problem(3, 3, [2.0] * 8, [(1, 1)])
        ga = GeneticAlgorithm(GAConfig(population_size=4, n_generations=3))
        result = ga.run(Evaluator(problem), RandomInitializer(), rng)
        assert result.best.giant_size == 8
