"""Unit tests for the movement types (neighborhood structures)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clients import ClientSet
from repro.core.evaluation import Evaluator
from repro.core.geometry import Point, Rect
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance
from repro.core.routers import RouterFleet
from repro.core.solution import Placement
from repro.neighborhood.moves import RelocateMove, SwapMove
from repro.neighborhood.movements import (
    CombinedMovement,
    RandomMovement,
    SwapMovement,
)


@pytest.fixture
def clustered_problem():
    """Clients clustered bottom-left; routers spread with known radii.

    Router 0 (radius 6) is the strongest and sits far from the clients;
    routers 1-3 (radii 2, 3, 4) sit in / near the client cluster.
    """
    grid = GridArea(32, 32)
    fleet = RouterFleet.from_radii([6.0, 2.0, 3.0, 4.0])
    clients = ClientSet.from_points(
        [Point(2, 2), Point(3, 2), Point(2, 3), Point(4, 4), Point(3, 3)],
        grid=grid,
    )
    problem = ProblemInstance(grid=grid, fleet=fleet, clients=clients)
    placement = Placement.from_cells(
        grid, [Point(30, 30), Point(2, 2), Point(4, 3), Point(6, 6)]
    )
    return problem, placement


class TestRandomMovement:
    def test_proposes_valid_relocation(self, clustered_problem, rng):
        problem, placement = clustered_problem
        current = Evaluator(problem).evaluate(placement)
        movement = RandomMovement()
        for _ in range(25):
            move = movement.propose(current, problem, rng)
            assert isinstance(move, RelocateMove)
            # Applies cleanly: target is free and in-grid.
            moved = move.apply(placement)
            assert len(moved.occupied) == len(placement)

    def test_explores_all_routers(self, clustered_problem, rng):
        problem, placement = clustered_problem
        current = Evaluator(problem).evaluate(placement)
        movement = RandomMovement()
        touched = {
            movement.propose(current, problem, rng).router_id
            for _ in range(100)
        }
        assert touched == {0, 1, 2, 3}


class TestSwapMovementLiteral:
    def test_literal_swap_exchanges_weakest_dense_strongest_sparse(
        self, clustered_problem, rng
    ):
        problem, placement = clustered_problem
        current = Evaluator(problem).evaluate(placement)
        movement = SwapMovement(
            relocate=False, window_fraction=0.25, pool=1
        )
        move = movement.propose(current, problem, rng)
        # The densest 8x8 window holds the client cluster with routers
        # 1 (weakest, radius 2) and 2; the sparsest window holds either
        # router 0 alone or no router at all.
        if move is not None:
            assert isinstance(move, SwapMove)
            assert move.router_a == 1  # weakest in dense area

    def test_literal_swap_preserves_occupancy(self, clustered_problem, rng):
        problem, placement = clustered_problem
        current = Evaluator(problem).evaluate(placement)
        movement = SwapMovement(relocate=False, window_fraction=0.25)
        for _ in range(20):
            move = movement.propose(current, problem, rng)
            if move is None:
                continue
            assert move.apply(placement).occupied == placement.occupied


class TestSwapMovementRelocating:
    def test_relocates_into_dense_window(self, clustered_problem, rng):
        problem, placement = clustered_problem
        current = Evaluator(problem).evaluate(placement)
        movement = SwapMovement(
            relocate=True, window_fraction=0.25, pool=1, density_source="clients"
        )
        move = movement.propose(current, problem, rng)
        assert isinstance(move, RelocateMove)
        # Target lies in the densest client window (bottom-left cluster).
        assert move.target.x < 16 and move.target.y < 16

    def test_mover_is_strong_router(self, clustered_problem, rng):
        problem, placement = clustered_problem
        current = Evaluator(problem).evaluate(placement)
        movement = SwapMovement(relocate=True, window_fraction=0.25, pool=1)
        movers = set()
        for _ in range(30):
            move = movement.propose(current, problem, rng)
            if move is not None:
                movers.add(move.router_id)
        # The strongest router outside the dense area (router 0) must be
        # among the proposed movers.
        assert 0 in movers

    def test_full_dense_window_yields_none(self, rng):
        # 2x2 grid fully occupied: no free cell anywhere.
        grid = GridArea(2, 2)
        problem = ProblemInstance(
            grid=grid,
            fleet=RouterFleet.from_radii([1.0, 1.0, 1.0, 1.0]),
            clients=ClientSet.from_points([Point(0, 0)]),
        )
        placement = Placement.from_cells(grid, list(grid.cells()))
        current = Evaluator(problem).evaluate(placement)
        movement = SwapMovement(relocate=True, window_fraction=1.0, pool=1)
        assert movement.propose(current, problem, rng) is None

    def test_density_sources(self, clustered_problem, rng):
        problem, placement = clustered_problem
        current = Evaluator(problem).evaluate(placement)
        for source in ("clients", "routers", "both"):
            movement = SwapMovement(density_source=source)
            move = movement.propose(current, problem, rng)
            assert move is None or isinstance(move, (SwapMove, RelocateMove))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SwapMovement(window_fraction=0.0)
        with pytest.raises(ValueError):
            SwapMovement(density_source="gravity")
        with pytest.raises(ValueError):
            SwapMovement(pool=0)
        with pytest.raises(ValueError):
            SwapMovement(window_width=-1)

    def test_window_size(self):
        grid = GridArea(128, 128)
        assert SwapMovement(window_fraction=0.125).window_size(grid) == (16, 16)
        assert SwapMovement(window_width=5, window_height=7).window_size(grid) == (
            5,
            7,
        )


class TestCombinedMovement:
    def test_mixes_constituents(self, clustered_problem, rng):
        problem, placement = clustered_problem
        current = Evaluator(problem).evaluate(placement)
        combined = CombinedMovement(
            [RandomMovement(), SwapMovement(relocate=True)]
        )
        kinds = set()
        for _ in range(50):
            move = combined.propose(current, problem, rng)
            if move is not None:
                kinds.add(type(move).__name__)
        assert "RelocateMove" in kinds

    def test_weights_normalized(self):
        combined = CombinedMovement(
            [RandomMovement(), RandomMovement()], weights=[3.0, 1.0]
        )
        assert combined.probabilities[0] == pytest.approx(0.75)
        assert combined.probabilities[1] == pytest.approx(0.25)

    def test_zero_weight_never_selected(self, clustered_problem, rng):
        problem, placement = clustered_problem
        current = Evaluator(problem).evaluate(placement)

        class Marker(RandomMovement):
            def propose(self, current, problem, rng):
                raise AssertionError("zero-weight movement selected")

        combined = CombinedMovement(
            [RandomMovement(), Marker()], weights=[1.0, 0.0]
        )
        for _ in range(20):
            combined.propose(current, problem, rng)

    def test_validation(self):
        with pytest.raises(ValueError):
            CombinedMovement([])
        with pytest.raises(ValueError):
            CombinedMovement([RandomMovement()], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            CombinedMovement([RandomMovement()], weights=[0.0])
        with pytest.raises(ValueError):
            CombinedMovement([RandomMovement()], weights=[-1.0])
