"""Test package (unique module names for duplicate basenames)."""
