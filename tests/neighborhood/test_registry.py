"""Unit tests for the movement registry."""

from __future__ import annotations

import pytest

from repro.neighborhood.movements import (
    CombinedMovement,
    RandomMovement,
    SwapMovement,
)
from repro.neighborhood.registry import (
    available_movements,
    make_movement,
    register_movement,
)
from repro.neighborhood import registry as registry_module


class TestMovementRegistry:
    def test_builtin_movements(self):
        assert {"random", "swap", "swap-literal", "combined"} <= set(
            available_movements()
        )

    def test_make_random(self):
        assert isinstance(make_movement("random"), RandomMovement)

    def test_make_swap_relocating_default(self):
        movement = make_movement("swap")
        assert isinstance(movement, SwapMovement)
        assert movement.relocate is True

    def test_make_swap_literal(self):
        movement = make_movement("swap-literal")
        assert isinstance(movement, SwapMovement)
        assert movement.relocate is False

    def test_swap_parameters_forwarded(self):
        movement = make_movement("swap", window_fraction=0.25, pool=3)
        assert movement.window_fraction == 0.25
        assert movement.pool == 3

    def test_make_combined_default_mixture(self):
        movement = make_movement("combined")
        assert isinstance(movement, CombinedMovement)
        assert len(movement.movements) == 2

    def test_make_combined_custom(self):
        movement = make_movement(
            "combined",
            movements=[RandomMovement()],
            weights=[1.0],
        )
        assert len(movement.movements) == 1

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown movement"):
            make_movement("teleport")

    def test_register_custom(self, monkeypatch):
        monkeypatch.setattr(
            registry_module, "_FACTORIES", dict(registry_module._FACTORIES)
        )
        register_movement("mine", RandomMovement)
        assert isinstance(make_movement("mine"), RandomMovement)

    def test_register_duplicate_rejected(self, monkeypatch):
        monkeypatch.setattr(
            registry_module, "_FACTORIES", dict(registry_module._FACTORIES)
        )
        with pytest.raises(ValueError, match="already registered"):
            register_movement("swap", RandomMovement)
