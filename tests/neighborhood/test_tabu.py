"""Unit tests for tabu search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluation import Evaluator
from repro.core.solution import Placement
from repro.neighborhood.moves import RelocateMove, SwapMove
from repro.neighborhood.movements import RandomMovement
from repro.neighborhood.tabu import TabuSearch, _touched_routers


class TestTouchedRouters:
    def test_swap_touches_both(self):
        assert _touched_routers(SwapMove(2, 5)) == (2, 5)

    def test_relocate_touches_one(self):
        from repro.core.geometry import Point

        assert _touched_routers(RelocateMove(3, Point(0, 0))) == (3,)


class TestTabuSearch:
    def test_runs_and_traces(self, tiny_problem, rng):
        evaluator = Evaluator(tiny_problem)
        initial = Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        search = TabuSearch(RandomMovement(), tenure=4, n_candidates=4, max_phases=8)
        result = search.run(evaluator, initial, rng)
        assert result.n_phases == 8
        assert len(result.trace) == 9

    def test_best_never_below_initial(self, tiny_problem, rng):
        evaluator = Evaluator(tiny_problem)
        initial = Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        start = evaluator.evaluate(initial).fitness
        result = TabuSearch(
            RandomMovement(), tenure=4, n_candidates=8, max_phases=12
        ).run(evaluator, initial, rng)
        assert result.best.fitness >= start

    def test_zero_tenure_degenerates_to_greedy_walk(self, tiny_problem, rng):
        evaluator = Evaluator(tiny_problem)
        initial = Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        result = TabuSearch(
            RandomMovement(), tenure=0, n_candidates=4, max_phases=6
        ).run(evaluator, initial, rng)
        assert len(result.trace) == 7

    def test_incumbent_may_move_downhill(self, tiny_problem):
        # Tabu search always moves to the best admissible neighbor, so
        # with a tiny candidate pool the incumbent fitness dips.
        evaluator = Evaluator(tiny_problem)
        rng = np.random.default_rng(3)
        initial = Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        result = TabuSearch(
            RandomMovement(), tenure=2, n_candidates=1, max_phases=30
        ).run(evaluator, initial, rng)
        fitness = result.trace.fitness_values
        assert any(b < a for a, b in zip(fitness, fitness[1:]))

    def test_deterministic_with_seed(self, tiny_problem):
        initial = Placement.random(
            tiny_problem.grid, tiny_problem.n_routers, np.random.default_rng(5)
        )
        scores = [
            TabuSearch(RandomMovement(), tenure=3, n_candidates=4, max_phases=6)
            .run(Evaluator(tiny_problem), initial, np.random.default_rng(11))
            .best.fitness
            for _ in range(2)
        ]
        assert scores[0] == scores[1]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TabuSearch(RandomMovement(), tenure=-1)
        with pytest.raises(ValueError):
            TabuSearch(RandomMovement(), n_candidates=0)
        with pytest.raises(ValueError):
            TabuSearch(RandomMovement(), max_phases=0)
