"""Unit tests for local moves."""

from __future__ import annotations

import pytest

from repro.core.geometry import Point
from repro.core.grid import GridArea
from repro.core.solution import Placement
from repro.neighborhood.moves import RelocateMove, SwapMove


@pytest.fixture
def placement():
    return Placement.from_cells(
        GridArea(10, 10), [Point(0, 0), Point(5, 5), Point(9, 9)]
    )


class TestSwapMove:
    def test_apply_exchanges_positions(self, placement):
        moved = SwapMove(0, 2).apply(placement)
        assert moved[0] == Point(9, 9)
        assert moved[2] == Point(0, 0)
        assert moved[1] == placement[1]

    def test_occupied_cells_invariant(self, placement):
        moved = SwapMove(0, 1).apply(placement)
        assert moved.occupied == placement.occupied

    def test_same_router_rejected_at_construction(self):
        with pytest.raises(ValueError, match="distinct"):
            SwapMove(1, 1)

    def test_invalid_router_rejected_at_apply(self, placement):
        with pytest.raises(ValueError):
            SwapMove(0, 9).apply(placement)

    def test_describe(self):
        assert "router 0" in SwapMove(0, 1).describe()
        assert "swap" in SwapMove(0, 1).describe()

    def test_original_untouched(self, placement):
        SwapMove(0, 1).apply(placement)
        assert placement[0] == Point(0, 0)


class TestRelocateMove:
    def test_apply_moves_single_router(self, placement):
        moved = RelocateMove(1, Point(2, 2)).apply(placement)
        assert moved[1] == Point(2, 2)
        assert moved[0] == placement[0]
        assert moved[2] == placement[2]

    def test_occupied_target_rejected(self, placement):
        with pytest.raises(ValueError, match="occupied"):
            RelocateMove(0, Point(5, 5)).apply(placement)

    def test_out_of_grid_target_rejected(self, placement):
        with pytest.raises(ValueError):
            RelocateMove(0, Point(50, 0)).apply(placement)

    def test_describe(self):
        text = RelocateMove(2, Point(3, 4)).describe()
        assert "router 2" in text
        assert "(3, 4)" in text

    def test_noop_relocation_allowed(self, placement):
        # Moving a router onto its own cell is the identity.
        assert RelocateMove(0, Point(0, 0)).apply(placement) is placement
