"""Unit tests for best-neighbor selection (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluation import Evaluator
from repro.core.geometry import Point
from repro.core.solution import Placement
from repro.neighborhood.best_neighbor import best_neighbor
from repro.neighborhood.moves import RelocateMove
from repro.neighborhood.movements import MovementType, RandomMovement


class NoneMovement(MovementType):
    """Never proposes anything."""

    name = "none"

    def propose(self, current, problem, rng):
        return None


class FixedMovement(MovementType):
    """Always proposes the same relocation."""

    name = "fixed"

    def __init__(self, move):
        self.move = move

    def propose(self, current, problem, rng):
        return self.move


class StaleMovement(MovementType):
    """Proposes a move that can never be applied (target occupied)."""

    name = "stale"

    def propose(self, current, problem, rng):
        return RelocateMove(0, current.placement[1])


class TestBestNeighbor:
    def test_returns_best_of_sampled(self, tiny_problem, rng):
        evaluator = Evaluator(tiny_problem)
        current = evaluator.evaluate(
            Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        )
        result = best_neighbor(
            evaluator, current, RandomMovement(), rng, n_candidates=16
        )
        assert result is not None
        # Best-of-sample is at least as good as a fresh single sample.
        single = best_neighbor(
            evaluator, current, RandomMovement(), rng, n_candidates=1
        )
        assert single is None or result.fitness >= single.fitness - 1e-12

    def test_candidate_budget_respected(self, tiny_problem, rng):
        evaluator = Evaluator(tiny_problem)
        current = evaluator.evaluate(
            Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        )
        before = evaluator.n_evaluations
        best_neighbor(evaluator, current, RandomMovement(), rng, n_candidates=7)
        assert evaluator.n_evaluations - before == 7

    def test_none_when_no_moves_available(self, tiny_problem, rng):
        evaluator = Evaluator(tiny_problem)
        current = evaluator.evaluate(
            Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        )
        assert (
            best_neighbor(evaluator, current, NoneMovement(), rng, 8) is None
        )

    def test_stale_moves_skipped(self, tiny_problem, rng):
        evaluator = Evaluator(tiny_problem)
        current = evaluator.evaluate(
            Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        )
        before = evaluator.n_evaluations
        result = best_neighbor(evaluator, current, StaleMovement(), rng, 8)
        assert result is None
        assert evaluator.n_evaluations == before  # nothing evaluated

    def test_fixed_move_returns_its_neighbor(self, tiny_problem, rng):
        evaluator = Evaluator(tiny_problem)
        placement = Placement.random(
            tiny_problem.grid, tiny_problem.n_routers, rng
        )
        current = evaluator.evaluate(placement)
        target = next(
            cell for cell in tiny_problem.grid.cells() if placement.is_free(cell)
        )
        move = RelocateMove(0, target)
        result = best_neighbor(evaluator, current, FixedMovement(move), rng, 3)
        assert result is not None
        assert result.placement[0] == target

    def test_invalid_candidate_count(self, tiny_problem, rng):
        evaluator = Evaluator(tiny_problem)
        current = evaluator.evaluate(
            Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        )
        with pytest.raises(ValueError):
            best_neighbor(evaluator, current, RandomMovement(), rng, 0)
