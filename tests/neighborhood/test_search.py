"""Unit tests for the neighborhood search (Algorithm 1) and its trace."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluation import Evaluation, Evaluator
from repro.core.solution import Placement
from repro.neighborhood.movements import RandomMovement
from repro.neighborhood.search import NeighborhoodSearch
from repro.neighborhood.trace import PhaseRecord, SearchTrace


@pytest.fixture
def setup(tiny_problem, rng):
    evaluator = Evaluator(tiny_problem)
    initial = Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
    return evaluator, initial


class TestNeighborhoodSearch:
    def test_runs_all_phases_by_default(self, setup, rng):
        evaluator, initial = setup
        search = NeighborhoodSearch(RandomMovement(), n_candidates=4, max_phases=10)
        result = search.run(evaluator, initial, rng)
        assert result.n_phases == 10
        assert len(result.trace) == 11  # phase 0 + 10 phases

    def test_monotone_incumbent_fitness(self, setup, rng):
        evaluator, initial = setup
        search = NeighborhoodSearch(RandomMovement(), n_candidates=8, max_phases=15)
        result = search.run(evaluator, initial, rng)
        fitness = result.trace.fitness_values
        assert all(b >= a - 1e-12 for a, b in zip(fitness, fitness[1:]))

    def test_best_is_final_under_monotone_accept(self, setup, rng):
        evaluator, initial = setup
        search = NeighborhoodSearch(RandomMovement(), n_candidates=8, max_phases=15)
        result = search.run(evaluator, initial, rng)
        assert result.best.fitness == pytest.approx(result.trace.best_fitness())

    def test_improves_over_initial(self, setup, rng):
        evaluator, initial = setup
        start = evaluator.evaluate(initial)
        search = NeighborhoodSearch(RandomMovement(), n_candidates=16, max_phases=20)
        result = search.run(evaluator, initial, rng)
        assert result.best.fitness >= start.fitness

    def test_stall_phases_stops_early(self, setup):
        evaluator, initial = setup
        search = NeighborhoodSearch(
            RandomMovement(), n_candidates=1, max_phases=500, stall_phases=3
        )
        result = search.run(evaluator, initial, np.random.default_rng(0))
        assert result.n_phases < 500

    def test_fitness_target_stops_early(self, setup, rng):
        evaluator, initial = setup
        search = NeighborhoodSearch(RandomMovement(), n_candidates=4, max_phases=50)
        result = search.run(evaluator, initial, rng, fitness_target=-1.0)
        assert result.n_phases == 1  # target met immediately after one phase

    def test_evaluation_accounting(self, setup, rng):
        evaluator, initial = setup
        search = NeighborhoodSearch(RandomMovement(), n_candidates=4, max_phases=5)
        result = search.run(evaluator, initial, rng)
        # 1 initial + up to 4 evaluations per phase.
        assert result.n_evaluations == 1 + 4 * 5
        assert result.trace.final().n_evaluations == result.n_evaluations

    def test_accept_equal_allows_sideways(self, setup, rng):
        evaluator, initial = setup
        search = NeighborhoodSearch(
            RandomMovement(), n_candidates=4, max_phases=5, accept_equal=True
        )
        result = search.run(evaluator, initial, rng)
        assert result.best.fitness >= evaluator.evaluate(initial).fitness

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NeighborhoodSearch(RandomMovement(), n_candidates=0)
        with pytest.raises(ValueError):
            NeighborhoodSearch(RandomMovement(), max_phases=0)
        with pytest.raises(ValueError):
            NeighborhoodSearch(RandomMovement(), stall_phases=0)

    def test_result_properties(self, setup, rng):
        evaluator, initial = setup
        result = NeighborhoodSearch(
            RandomMovement(), n_candidates=4, max_phases=3
        ).run(evaluator, initial, rng)
        assert result.giant_size == result.best.giant_size
        assert result.covered_clients == result.best.covered_clients


class TestSearchTrace:
    def make_record(self, phase, giant=5, fitness=0.5):
        return PhaseRecord(
            phase=phase,
            giant_size=giant,
            covered_clients=10,
            fitness=fitness,
            improved=False,
            n_evaluations=phase * 4,
        )

    def test_orders_enforced(self):
        trace = SearchTrace()
        trace.append(self.make_record(0))
        trace.append(self.make_record(1))
        with pytest.raises(ValueError, match="out of order"):
            trace.append(self.make_record(1))

    def test_series_accessors(self):
        trace = SearchTrace()
        for phase in range(4):
            trace.append(self.make_record(phase, giant=phase, fitness=0.1 * phase))
        assert trace.phases == [0, 1, 2, 3]
        assert trace.giant_sizes == [0, 1, 2, 3]
        assert trace.best_fitness() == pytest.approx(0.3)
        assert trace.final().phase == 3
        assert len(trace) == 4
        assert trace[2].giant_size == 2

    def test_empty_trace_raises(self):
        trace = SearchTrace()
        with pytest.raises(ValueError):
            trace.final()
        with pytest.raises(ValueError):
            trace.best_fitness()

    def test_record_as_dict(self):
        record = self.make_record(2)
        d = record.as_dict()
        assert d["phase"] == 2
        assert set(d) == {
            "phase",
            "giant_size",
            "covered_clients",
            "fitness",
            "improved",
            "n_evaluations",
        }
