"""Tests for the lockstep multi-chain search engine.

The contract under test: per-chain results (best solution, trace, phase
and evaluation counts) are **bit-identical** to running each chain
through a serial :class:`NeighborhoodSearch`, for every movement type,
stopping condition, engine path and ``workers=`` sharding — because the
per-chain RNG streams are consumed identically everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluation import Evaluation, Evaluator
from repro.core.solution import Placement
from repro.instances.catalog import tiny_spec
from repro.neighborhood import (
    MultiChainSearch,
    MultiStartSearch,
    NeighborhoodSearch,
    chain_generators,
)
from repro.neighborhood.moves import Move, RelocateMove
from repro.neighborhood.movements import (
    CombinedMovement,
    MovementType,
    RandomMovement,
    SwapMovement,
)


@pytest.fixture(scope="module")
def problem():
    return tiny_spec(seed=7).generate()


MOVEMENT_FACTORIES = [
    pytest.param(SwapMovement, id="swap"),
    pytest.param(lambda: SwapMovement(relocate=False), id="swap-literal"),
    pytest.param(
        lambda: SwapMovement(density_source="clients"), id="swap-clients"
    ),
    pytest.param(RandomMovement, id="random"),
    pytest.param(
        lambda: CombinedMovement([SwapMovement(), RandomMovement()]),
        id="combined",
    ),
]


def chain_rngs(n_chains, base=42):
    return [np.random.default_rng((base, chain)) for chain in range(n_chains)]


def chain_starts(problem, rngs):
    return [
        Placement.random(problem.grid, problem.n_routers, rng) for rng in rngs
    ]


def run_serial(problem, factory, n_chains, base=42, **kwargs):
    results = []
    for chain in range(n_chains):
        rng = np.random.default_rng((base, chain))
        initial = Placement.random(problem.grid, problem.n_routers, rng)
        search = NeighborhoodSearch(factory(), **kwargs)
        results.append(search.run(Evaluator(problem), initial, rng))
    return results


def run_lockstep(problem, factory, n_chains, base=42, workers=None, **kwargs):
    rngs = chain_rngs(n_chains, base)
    initials = chain_starts(problem, rngs)
    search = MultiChainSearch(factory(), **kwargs)
    return search.run(problem, initials, rngs, workers=workers)


def assert_identical(serial, lockstep):
    assert len(serial) == len(lockstep)
    for a, b in zip(serial, lockstep):
        assert a.best.fitness == b.best.fitness
        assert a.best.placement.cells == b.best.placement.cells
        assert a.best.metrics == b.best.metrics
        assert np.array_equal(a.best.giant_mask, b.best.giant_mask)
        assert a.n_phases == b.n_phases
        assert a.n_evaluations == b.n_evaluations
        assert len(a.trace) == len(b.trace)
        for record_a, record_b in zip(a.trace, b.trace):
            assert record_a.as_dict() == record_b.as_dict()


class TestProposeBatchContract:
    """propose_batch must equal R scalar propose calls per chain stream."""

    @pytest.mark.parametrize("factory", MOVEMENT_FACTORIES)
    def test_agrees_with_scalar_propose(self, problem, factory):
        n_chains, n_candidates = 4, 10
        evaluator = Evaluator(problem)
        currents = [
            evaluator.evaluate(placement)
            for placement in chain_starts(problem, chain_rngs(n_chains, 3))
        ]
        batch_rngs = chain_rngs(n_chains, 11)
        scalar_rngs = chain_rngs(n_chains, 11)
        batch_movement = factory()
        scalar_movement = factory()
        batch = batch_movement.propose_batch(
            currents, problem, batch_rngs, n_candidates
        )
        scalar = [
            [
                scalar_movement.propose(currents[chain], problem, rng)
                for _ in range(n_candidates)
            ]
            for chain, rng in enumerate(scalar_rngs)
        ]
        assert batch == scalar
        # The streams must also END in the same state: no hidden draws.
        for fast, reference in zip(batch_rngs, scalar_rngs):
            assert fast.integers(1 << 30) == reference.integers(1 << 30)

    def test_rejects_mismatched_lengths(self, problem):
        evaluator = Evaluator(problem)
        current = evaluator.evaluate(
            Placement.random(problem.grid, problem.n_routers, chain_rngs(1)[0])
        )
        with pytest.raises(ValueError):
            RandomMovement().propose_batch(
                [current], problem, chain_rngs(2), 4
            )


class TestChainGenerators:
    def test_reproducible_and_independent(self):
        first = chain_generators(123, 4)
        second = chain_generators(123, 4)
        draws_first = [rng.integers(1 << 30) for rng in first]
        draws_second = [rng.integers(1 << 30) for rng in second]
        assert draws_first == draws_second
        assert len(set(draws_first)) == len(draws_first)

    def test_accepts_seed_sequence(self):
        sequence = np.random.SeedSequence(9)
        rngs = chain_generators(sequence, 2)
        assert len(rngs) == 2

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            chain_generators(1, 0)


class TestLockstepParity:
    @pytest.mark.parametrize("factory", MOVEMENT_FACTORIES)
    def test_matches_serial_chains(self, problem, factory):
        serial = run_serial(
            problem, factory, 5, n_candidates=6, max_phases=10
        )
        lockstep = run_lockstep(
            problem, factory, 5, n_candidates=6, max_phases=10
        )
        assert_identical(serial, lockstep)

    def test_stall_and_sideways_acceptance(self, problem):
        kwargs = dict(
            n_candidates=5, max_phases=12, stall_phases=3, accept_equal=True
        )
        serial = run_serial(problem, RandomMovement, 4, **kwargs)
        lockstep = run_lockstep(problem, RandomMovement, 4, **kwargs)
        assert_identical(serial, lockstep)

    def test_fitness_target_masks_chains(self, problem):
        serial = []
        for chain in range(4):
            rng = np.random.default_rng((42, chain))
            initial = Placement.random(problem.grid, problem.n_routers, rng)
            search = NeighborhoodSearch(
                SwapMovement(), n_candidates=5, max_phases=15
            )
            serial.append(
                search.run(Evaluator(problem), initial, rng, fitness_target=0.5)
            )
        rngs = chain_rngs(4)
        initials = chain_starts(problem, rngs)
        lockstep = MultiChainSearch(
            SwapMovement(), n_candidates=5, max_phases=15
        ).run(problem, initials, rngs, fitness_target=0.5)
        assert_identical(serial, lockstep)

    def test_chains_stop_at_different_phases(self, problem):
        # With a tight patience different chains stall at different
        # phases; the lockstep masking must reproduce each endpoint.
        kwargs = dict(n_candidates=4, max_phases=20, stall_phases=2)
        serial = run_serial(problem, SwapMovement, 6, **kwargs)
        lockstep = run_lockstep(problem, SwapMovement, 6, **kwargs)
        assert_identical(serial, lockstep)
        assert len({result.n_phases for result in lockstep}) > 1

    def test_sparse_engine_parity(self, problem):
        dense = run_lockstep(
            problem, SwapMovement, 3, n_candidates=5, max_phases=8
        )
        rngs = chain_rngs(3)
        initials = chain_starts(problem, rngs)
        sparse = MultiChainSearch(
            SwapMovement(), n_candidates=5, max_phases=8, engine="sparse"
        ).run(problem, initials, rngs)
        assert_identical(dense, sparse)

    def test_exotic_move_type_falls_back(self, problem):
        class WrappedRelocate(Move):
            def __init__(self, inner):
                self.inner = inner

            def apply(self, placement):
                return self.inner.apply(placement)

            def describe(self):
                return f"wrapped({self.inner.describe()})"

        class WrappingMovement(MovementType):
            name = "wrapping"

            def __init__(self):
                self._random = RandomMovement()

            def propose(self, current, problem, rng):
                move = self._random.propose(current, problem, rng)
                return None if move is None else WrappedRelocate(move)

        serial = run_serial(
            problem, WrappingMovement, 3, n_candidates=4, max_phases=6
        )
        lockstep = run_lockstep(
            problem, WrappingMovement, 3, n_candidates=4, max_phases=6
        )
        assert_identical(serial, lockstep)


class TestDeterminismAndWorkers:
    def test_same_seeds_same_results(self, problem):
        first = run_lockstep(
            problem, SwapMovement, 4, n_candidates=5, max_phases=8
        )
        second = run_lockstep(
            problem, SwapMovement, 4, n_candidates=5, max_phases=8
        )
        assert_identical(first, second)

    def test_workers_match_serial_lockstep(self, problem):
        single = run_lockstep(
            problem, SwapMovement, 6, n_candidates=4, max_phases=6
        )
        sharded = run_lockstep(
            problem, SwapMovement, 6, n_candidates=4, max_phases=6, workers=3
        )
        assert_identical(single, sharded)

    def test_invalid_inputs(self, problem):
        search = MultiChainSearch(RandomMovement())
        rngs = chain_rngs(2)
        initials = chain_starts(problem, rngs)
        with pytest.raises(ValueError):
            search.run(problem, [], [])
        with pytest.raises(ValueError):
            search.run(problem, initials, rngs[:1])
        with pytest.raises(ValueError):
            search.run(problem, initials, rngs, workers=0)
        with pytest.raises(ValueError):
            MultiChainSearch(RandomMovement(), n_candidates=0)
        with pytest.raises(ValueError):
            MultiChainSearch(RandomMovement(), max_phases=0)
        with pytest.raises(ValueError):
            MultiChainSearch(RandomMovement(), stall_phases=0)

    def test_movement_factory_resolution(self, problem):
        rngs = chain_rngs(2)
        initials = chain_starts(problem, rngs)
        with pytest.raises(TypeError):
            MultiChainSearch(lambda: object()).run(problem, initials, rngs)


class TestMultiStartSearch:
    def test_best_of_restarts(self, problem):
        search = MultiStartSearch(
            SwapMovement, n_restarts=5, n_candidates=5, max_phases=8
        )
        outcome = search.run(problem, seed=77)
        assert outcome.n_restarts == 5
        fitnesses = [result.best.fitness for result in outcome.results]
        assert outcome.best.best.fitness == max(fitnesses)
        assert outcome.best_index == int(np.argmax(fitnesses))
        assert isinstance(outcome.best_evaluation, Evaluation)
        assert outcome.n_evaluations == sum(
            result.n_evaluations for result in outcome.results
        )

    def test_deterministic_from_parent_seed(self, problem):
        search = MultiStartSearch(
            RandomMovement, n_restarts=3, n_candidates=4, max_phases=6
        )
        first = search.run(problem, seed=5)
        second = search.run(problem, seed=5)
        assert first.best_index == second.best_index
        assert_identical(list(first.results), list(second.results))

    def test_explicit_generators(self, problem):
        search = MultiStartSearch(
            RandomMovement, n_restarts=2, n_candidates=4, max_phases=4
        )
        outcome = search.run(problem, seed=chain_rngs(2, base=9))
        assert outcome.n_restarts == 2
        with pytest.raises(ValueError):
            search.run(problem, seed=chain_rngs(3, base=9))

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiStartSearch(RandomMovement, n_restarts=0)


class TestReplicationContract:
    """replicate_movements == the serial per-chain loop, per seed."""

    def test_movement_replication_matches_serial_chains(self):
        from repro.experiments.replication import (
            _name_key,
            replicate_movements,
        )

        spec = tiny_spec(seed=8)
        problem = spec.generate()
        results = replicate_movements(
            spec, n_seeds=3, n_candidates=4, max_phases=5
        )
        for label, factory in (("Swap", SwapMovement), ("Random", RandomMovement)):
            giants = []
            coverages = []
            for seed in range(3):
                rng = np.random.default_rng((spec.seed, _name_key(label), seed))
                initial = Placement.random(
                    problem.grid, problem.n_routers, rng
                )
                outcome = NeighborhoodSearch(
                    factory(), n_candidates=4, max_phases=5, stall_phases=None
                ).run(Evaluator(problem), initial, rng)
                giants.append(float(outcome.best.giant_size))
                coverages.append(float(outcome.best.covered_clients))
            assert results[label]["giant"].values == tuple(giants)
            assert results[label]["coverage"].values == tuple(coverages)

    def test_standalone_replication_matches_scalar_runs(self):
        from repro.adhoc.registry import make_method
        from repro.experiments.replication import (
            _name_key,
            replicate_standalone,
        )

        spec = tiny_spec(seed=6)
        problem = spec.generate()
        results = replicate_standalone(
            spec, n_seeds=3, methods=("random", "hotspot")
        )
        for name in ("random", "hotspot"):
            fitnesses = []
            for seed in range(3):
                rng = np.random.default_rng((spec.seed, _name_key(name), seed))
                evaluation = Evaluator(problem).evaluate(
                    make_method(name).place(problem, rng)
                )
                fitnesses.append(evaluation.fitness)
            assert results[name]["fitness"].values == tuple(fitnesses)
