"""Unit tests for simulated annealing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluation import Evaluator
from repro.core.solution import Placement
from repro.neighborhood.annealing import AnnealingSchedule, SimulatedAnnealing
from repro.neighborhood.movements import RandomMovement


class TestAnnealingSchedule:
    def test_geometric_cooling(self):
        schedule = AnnealingSchedule(
            initial_temperature=1.0, cooling_rate=0.5, floor_temperature=1e-9
        )
        assert schedule.temperature_at(1) == 1.0
        assert schedule.temperature_at(2) == 0.5
        assert schedule.temperature_at(3) == 0.25

    def test_floor_applies(self):
        schedule = AnnealingSchedule(
            initial_temperature=1.0, cooling_rate=0.1, floor_temperature=0.05
        )
        assert schedule.temperature_at(10) == 0.05

    def test_constant_schedule(self):
        schedule = AnnealingSchedule(initial_temperature=0.2, cooling_rate=1.0)
        assert schedule.temperature_at(50) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            AnnealingSchedule(initial_temperature=0.0)
        with pytest.raises(ValueError):
            AnnealingSchedule(cooling_rate=0.0)
        with pytest.raises(ValueError):
            AnnealingSchedule(cooling_rate=1.5)
        with pytest.raises(ValueError):
            AnnealingSchedule(floor_temperature=0.0)

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            AnnealingSchedule().temperature_at(0)


class TestSimulatedAnnealing:
    def test_runs_and_traces(self, tiny_problem, rng):
        evaluator = Evaluator(tiny_problem)
        initial = Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        sa = SimulatedAnnealing(
            RandomMovement(), max_phases=8, moves_per_phase=4
        )
        result = sa.run(evaluator, initial, rng)
        assert result.n_phases == 8
        assert len(result.trace) == 9

    def test_best_never_below_initial(self, tiny_problem, rng):
        evaluator = Evaluator(tiny_problem)
        initial = Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        start_fitness = evaluator.evaluate(initial).fitness
        sa = SimulatedAnnealing(RandomMovement(), max_phases=10, moves_per_phase=4)
        result = sa.run(evaluator, initial, rng)
        assert result.best.fitness >= start_fitness

    def test_best_tracks_max_of_trace(self, tiny_problem, rng):
        evaluator = Evaluator(tiny_problem)
        initial = Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        sa = SimulatedAnnealing(RandomMovement(), max_phases=10, moves_per_phase=4)
        result = sa.run(evaluator, initial, rng)
        # The incumbent can move downhill, but best dominates the trace.
        assert result.best.fitness >= max(result.trace.fitness_values) - 1e-12

    def test_hot_chain_accepts_worse_moves(self, tiny_problem):
        evaluator = Evaluator(tiny_problem)
        rng = np.random.default_rng(0)
        initial = Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        hot = SimulatedAnnealing(
            RandomMovement(),
            schedule=AnnealingSchedule(initial_temperature=10.0, cooling_rate=1.0),
            max_phases=10,
            moves_per_phase=4,
        )
        result = hot.run(evaluator, initial, rng)
        fitness = result.trace.fitness_values
        # At such temperatures essentially every move is accepted, so the
        # incumbent fitness must fluctuate downward at least once.
        assert any(b < a for a, b in zip(fitness, fitness[1:]))

    def test_deterministic_with_seed(self, tiny_problem):
        evaluator = Evaluator(tiny_problem)
        initial = Placement.random(
            tiny_problem.grid, tiny_problem.n_routers, np.random.default_rng(5)
        )
        runs = []
        for _ in range(2):
            sa = SimulatedAnnealing(
                RandomMovement(), max_phases=6, moves_per_phase=4
            )
            result = sa.run(
                Evaluator(tiny_problem), initial, np.random.default_rng(17)
            )
            runs.append(result.best.fitness)
        assert runs[0] == runs[1]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SimulatedAnnealing(RandomMovement(), max_phases=0)
        with pytest.raises(ValueError):
            SimulatedAnnealing(RandomMovement(), moves_per_phase=0)
