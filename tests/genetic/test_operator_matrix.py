"""Integration matrix: every selection x crossover x mutation combination
drives a working GA.

The operators are pluggable by design; this test guarantees that any
combination a user wires together runs, respects the invariants and
improves (or at least never loses) the best fitness under elitism.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.evaluation import Evaluator
from repro.genetic.crossover import (
    OnePointCrossover,
    RegionExchangeCrossover,
    UniformCrossover,
)
from repro.genetic.engine import GAConfig, GeneticAlgorithm
from repro.genetic.initializers import RandomInitializer
from repro.genetic.mutation import (
    GeneSwapMutation,
    JiggleMutation,
    ResetMutation,
    TowardCentroidMutation,
)
from repro.genetic.selection import (
    RankSelection,
    RouletteWheelSelection,
    TournamentSelection,
)

SELECTIONS = [TournamentSelection(size=2), RouletteWheelSelection(), RankSelection()]
CROSSOVERS = [UniformCrossover(), OnePointCrossover(), RegionExchangeCrossover()]
MUTATIONS = [
    JiggleMutation(radius=3, per_gene_rate=0.2),
    ResetMutation(count=1),
    GeneSwapMutation(),
    TowardCentroidMutation(),
]

MATRIX = list(itertools.product(SELECTIONS, CROSSOVERS, MUTATIONS))


@pytest.mark.parametrize(
    "selection,crossover,mutation",
    MATRIX,
    ids=[
        f"{s.name}-{c.name}-{m.name}"
        for s, c, m in MATRIX
    ],
)
def test_operator_combination_runs(
    selection, crossover, mutation, tiny_problem
):
    config = GAConfig(
        population_size=6,
        n_generations=4,
        crossover_rate=0.9,
        mutation_rate=0.5,
        n_elites=1,
        selection=selection,
        crossover=crossover,
        mutation=mutation,
    )
    evaluator = Evaluator(tiny_problem)
    result = GeneticAlgorithm(config).run(
        evaluator, RandomInitializer(), np.random.default_rng(8)
    )
    # Invariants: valid best placement, monotone best fitness, full trace.
    assert len(result.best.placement.occupied) == tiny_problem.n_routers
    fitness = result.trace.best_fitnesses
    assert all(b >= a - 1e-12 for a, b in zip(fitness, fitness[1:]))
    assert len(result.trace) == 5
