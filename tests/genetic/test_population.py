"""Unit tests for individuals and populations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluation import Evaluator
from repro.core.solution import Placement
from repro.genetic.individual import Individual
from repro.genetic.population import Population


@pytest.fixture
def population(tiny_problem, rng):
    placements = [
        Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        for _ in range(6)
    ]
    return Population.from_placements(placements)


class TestIndividual:
    def test_unevaluated_state(self, tiny_problem, rng):
        ind = Individual(
            Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        )
        assert not ind.is_evaluated
        with pytest.raises(ValueError, match="not been evaluated"):
            _ = ind.fitness

    def test_ensure_evaluated_caches(self, tiny_problem, rng):
        evaluator = Evaluator(tiny_problem)
        ind = Individual(
            Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        )
        first = ind.ensure_evaluated(evaluator)
        second = ind.ensure_evaluated(evaluator)
        assert first is second
        assert evaluator.n_evaluations == 1
        assert ind.fitness == first.fitness

    def test_copy_shares_state(self, tiny_problem, rng):
        evaluator = Evaluator(tiny_problem)
        ind = Individual(
            Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        )
        ind.ensure_evaluated(evaluator)
        clone = ind.copy()
        assert clone.placement is ind.placement
        assert clone.evaluation is ind.evaluation
        assert clone is not ind


class TestPopulation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Population([])

    def test_evaluate_all(self, population, tiny_problem):
        evaluator = Evaluator(tiny_problem)
        population.evaluate_all(evaluator)
        assert evaluator.n_evaluations == len(population)
        population.require_evaluated()

    def test_require_evaluated_raises(self, population):
        with pytest.raises(ValueError, match="not been evaluated"):
            population.require_evaluated()

    def test_best_and_elites(self, population, tiny_problem):
        evaluator = Evaluator(tiny_problem)
        population.evaluate_all(evaluator)
        best = population.best()
        assert best.fitness == max(ind.fitness for ind in population)
        elites = population.elites(3)
        assert len(elites) == 3
        assert elites[0].fitness == best.fitness
        fitness = [e.fitness for e in elites]
        assert fitness == sorted(fitness, reverse=True)

    def test_elites_are_copies(self, population, tiny_problem):
        population.evaluate_all(Evaluator(tiny_problem))
        elites = population.elites(2)
        members = set(map(id, population.individuals))
        assert all(id(e) not in members for e in elites)

    def test_elites_validation(self, population, tiny_problem):
        population.evaluate_all(Evaluator(tiny_problem))
        with pytest.raises(ValueError):
            population.elites(-1)
        assert population.elites(0) == []

    def test_mean_and_values(self, population, tiny_problem):
        population.evaluate_all(Evaluator(tiny_problem))
        values = population.fitness_values()
        assert values.shape == (len(population),)
        assert population.mean_fitness() == pytest.approx(values.mean())

    def test_diversity_zero_for_identical(self, tiny_problem, rng):
        placement = Placement.random(
            tiny_problem.grid, tiny_problem.n_routers, rng
        )
        population = Population.from_placements([placement] * 4)
        assert population.diversity() == 0.0

    def test_diversity_positive_for_distinct(self, population):
        assert population.diversity() > 0.0

    def test_diversity_single_individual(self, tiny_problem, rng):
        population = Population.from_placements(
            [Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)]
        )
        assert population.diversity() == 0.0

    def test_container_protocol(self, population):
        assert len(population) == 6
        assert population[0] is population.individuals[0]
        assert list(iter(population)) == population.individuals
