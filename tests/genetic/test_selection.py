"""Unit tests for selection operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluation import Evaluator
from repro.core.solution import Placement
from repro.genetic.population import Population
from repro.genetic.selection import (
    RankSelection,
    RouletteWheelSelection,
    TournamentSelection,
)


@pytest.fixture
def evaluated_population(tiny_problem, rng):
    placements = [
        Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        for _ in range(8)
    ]
    population = Population.from_placements(placements)
    population.evaluate_all(Evaluator(tiny_problem))
    return population


ALL_OPERATORS = [
    TournamentSelection(size=3),
    RouletteWheelSelection(),
    RankSelection(),
]


@pytest.mark.parametrize("operator", ALL_OPERATORS, ids=lambda o: o.name)
class TestCommonBehaviour:
    def test_selects_member_of_population(self, operator, evaluated_population, rng):
        for _ in range(20):
            chosen = operator.select(evaluated_population, rng)
            assert chosen in evaluated_population.individuals

    def test_select_pair(self, operator, evaluated_population, rng):
        a, b = operator.select_pair(evaluated_population, rng)
        assert a in evaluated_population.individuals
        assert b in evaluated_population.individuals

    def test_deterministic_given_seed(self, operator, evaluated_population):
        a = operator.select(evaluated_population, np.random.default_rng(42))
        b = operator.select(evaluated_population, np.random.default_rng(42))
        assert a is b

    def test_biased_towards_fitter(self, operator, evaluated_population):
        # Statistical: the mean fitness of selected parents must beat the
        # population mean over many draws.
        rng = np.random.default_rng(7)
        picks = [
            operator.select(evaluated_population, rng).fitness
            for _ in range(400)
        ]
        assert np.mean(picks) >= evaluated_population.mean_fitness()


class TestTournament:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            TournamentSelection(size=0)

    def test_large_tournament_selects_best(self, evaluated_population):
        # With a tournament far larger than the population, the best
        # individual almost surely participates and wins.
        operator = TournamentSelection(size=256)
        chosen = operator.select(evaluated_population, np.random.default_rng(0))
        assert chosen.fitness == evaluated_population.best().fitness

    def test_requires_evaluated(self, tiny_problem, rng):
        population = Population.from_placements(
            [Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)]
        )
        with pytest.raises(ValueError):
            TournamentSelection().select(population, rng)


class TestRoulette:
    def test_degenerate_equal_fitness_uniform(self, tiny_problem, rng):
        placement = Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
        population = Population.from_placements([placement] * 4)
        population.evaluate_all(Evaluator(tiny_problem))
        # All fitness equal -> shifted weights are all zero -> uniform.
        counts = np.zeros(4)
        for _ in range(200):
            chosen = RouletteWheelSelection().select(population, rng)
            counts[population.individuals.index(chosen)] += 1
        assert (counts > 0).all()


class TestRank:
    def test_rank_ignores_magnitude(self, tiny_problem, rng):
        placements = [
            Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)
            for _ in range(4)
        ]
        population = Population.from_placements(placements)
        population.evaluate_all(Evaluator(tiny_problem))
        # Rank selection probabilities depend only on the ordering:
        # 1/10, 2/10, 3/10, 4/10 for 4 individuals.
        rng2 = np.random.default_rng(0)
        counts = np.zeros(4)
        order = np.argsort([ind.fitness for ind in population.individuals])
        for _ in range(2000):
            chosen = RankSelection().select(population, rng2)
            counts[population.individuals.index(chosen)] += 1
        best_index = order[-1]
        worst_index = order[0]
        assert counts[best_index] > counts[worst_index]
