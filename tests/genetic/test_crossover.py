"""Unit and property tests for crossover operators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import GridArea
from repro.core.solution import Placement
from repro.genetic.crossover import (
    OnePointCrossover,
    RegionExchangeCrossover,
    UniformCrossover,
)

ALL_OPERATORS = [
    UniformCrossover(),
    OnePointCrossover(),
    RegionExchangeCrossover(),
]


def random_parents(seed: int, n: int = 12, size: int = 16):
    rng = np.random.default_rng(seed)
    grid = GridArea(size, size)
    return (
        Placement.random(grid, n, rng),
        Placement.random(grid, n, rng),
        np.random.default_rng(seed + 1),
    )


@pytest.mark.parametrize("operator", ALL_OPERATORS, ids=lambda o: o.name)
class TestCommonBehaviour:
    def test_children_valid(self, operator):
        parent_a, parent_b, rng = random_parents(0)
        child1, child2 = operator.crossover(parent_a, parent_b, rng)
        for child in (child1, child2):
            assert len(child) == len(parent_a)
            assert len(child.occupied) == len(parent_a)

    def test_parents_untouched(self, operator):
        parent_a, parent_b, rng = random_parents(1)
        cells_a, cells_b = parent_a.cells, parent_b.cells
        operator.crossover(parent_a, parent_b, rng)
        assert parent_a.cells == cells_a
        assert parent_b.cells == cells_b

    def test_mismatched_parents_rejected(self, operator, rng):
        grid = GridArea(8, 8)
        a = Placement.random(grid, 4, np.random.default_rng(0))
        b = Placement.random(grid, 5, np.random.default_rng(1))
        with pytest.raises(ValueError, match="equal-length"):
            operator.crossover(a, b, rng)

    def test_different_grids_rejected(self, operator, rng):
        a = Placement.random(GridArea(8, 8), 4, np.random.default_rng(0))
        b = Placement.random(GridArea(9, 9), 4, np.random.default_rng(1))
        with pytest.raises(ValueError, match="different grids"):
            operator.crossover(a, b, rng)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_genes_close_to_a_parent(self, operator, seed):
        # After repair each gene sits on or near one parent's gene
        # (nudging moves at most a few cells).
        parent_a, parent_b, rng = random_parents(seed)
        child1, child2 = operator.crossover(parent_a, parent_b, rng)
        for child in (child1, child2):
            for i, cell in enumerate(child):
                da = max(abs(cell.x - parent_a[i].x), abs(cell.y - parent_a[i].y))
                db = max(abs(cell.x - parent_b[i].x), abs(cell.y - parent_b[i].y))
                assert min(da, db) <= 3


class TestUniform:
    def test_mix_rate_zero_copies_parent_a(self):
        parent_a, parent_b, rng = random_parents(2)
        child1, child2 = UniformCrossover(mix_rate=0.0).crossover(
            parent_a, parent_b, rng
        )
        assert child1.cells == parent_a.cells
        assert child2.cells == parent_b.cells

    def test_mix_rate_one_swaps_parents(self):
        parent_a, parent_b, rng = random_parents(3)
        child1, child2 = UniformCrossover(mix_rate=1.0).crossover(
            parent_a, parent_b, rng
        )
        assert child1.cells == parent_b.cells
        assert child2.cells == parent_a.cells

    def test_mix_rate_validation(self):
        with pytest.raises(ValueError):
            UniformCrossover(mix_rate=1.5)

    def test_children_complementary(self):
        parent_a, parent_b, rng = random_parents(4)
        # Use parents with disjoint occupied cells so no repair happens.
        grid = GridArea(32, 32)
        a = Placement.from_cells(grid, [(x, 0) for x in range(8)])
        b = Placement.from_cells(grid, [(x, 20) for x in range(8)])
        child1, child2 = UniformCrossover().crossover(a, b, rng)
        for i in range(8):
            genes = {child1[i], child2[i]}
            assert genes == {a[i], b[i]}


class TestOnePoint:
    def test_prefix_suffix_structure(self):
        grid = GridArea(32, 32)
        a = Placement.from_cells(grid, [(x, 0) for x in range(8)])
        b = Placement.from_cells(grid, [(x, 20) for x in range(8)])
        child1, _ = OnePointCrossover().crossover(
            a, b, np.random.default_rng(0)
        )
        # child1 = prefix of a + suffix of b: y-coordinates step up once.
        ys = [cell.y for cell in child1]
        transitions = sum(
            1 for y1, y2 in zip(ys, ys[1:]) if y1 != y2
        )
        assert transitions == 1

    def test_single_router_parents(self, rng):
        grid = GridArea(8, 8)
        a = Placement.from_cells(grid, [(0, 0)])
        b = Placement.from_cells(grid, [(5, 5)])
        child1, child2 = OnePointCrossover().crossover(a, b, rng)
        assert len(child1) == 1 and len(child2) == 1


class TestRegionExchange:
    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            RegionExchangeCrossover(min_fraction=0.0)
        with pytest.raises(ValueError):
            RegionExchangeCrossover(min_fraction=0.8, max_fraction=0.5)

    def test_child_mixes_spatially(self):
        grid = GridArea(32, 32)
        a = Placement.from_cells(grid, [(x * 2, 5) for x in range(10)])
        b = Placement.from_cells(grid, [(x * 2, 25) for x in range(10)])
        child1, child2 = RegionExchangeCrossover().crossover(
            a, b, np.random.default_rng(3)
        )
        # Children remain valid placements drawn from both rows.
        for child in (child1, child2):
            ys = {cell.y for cell in child}
            assert ys <= {5, 25} or len(ys) >= 1
