"""Unit tests for initializers, the GA engine and its trace."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adhoc import HotSpotPlacement, NearPlacement, RandomPlacement
from repro.core.evaluation import Evaluator
from repro.genetic.engine import GAConfig, GeneticAlgorithm
from repro.genetic.initializers import (
    AdHocInitializer,
    MixedInitializer,
    RandomInitializer,
)
from repro.genetic.trace import GATrace, GenerationRecord


class TestInitializers:
    def test_adhoc_initializer_size_and_validity(self, tiny_problem, rng):
        placements = AdHocInitializer(NearPlacement()).generate(
            tiny_problem, 6, rng
        )
        assert len(placements) == 6
        for p in placements:
            assert len(p) == tiny_problem.n_routers

    def test_adhoc_initializer_diversity(self, tiny_problem, rng):
        placements = AdHocInitializer(RandomPlacement()).generate(
            tiny_problem, 4, rng
        )
        assert len({p.cells for p in placements}) > 1

    def test_random_initializer(self, tiny_problem, rng):
        placements = RandomInitializer().generate(tiny_problem, 3, rng)
        assert len(placements) == 3

    def test_mixed_initializer_round_robin(self, tiny_problem, rng):
        mixed = MixedInitializer([NearPlacement(), HotSpotPlacement()])
        placements = mixed.generate(tiny_problem, 4, rng)
        assert len(placements) == 4

    def test_mixed_requires_methods(self):
        with pytest.raises(ValueError):
            MixedInitializer([])

    def test_size_validation(self, tiny_problem, rng):
        with pytest.raises(ValueError):
            RandomInitializer().generate(tiny_problem, 0, rng)


class TestGAConfig:
    def test_defaults_valid(self):
        config = GAConfig()
        assert config.population_size >= 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 1},
            {"n_generations": -1},
            {"crossover_rate": 1.5},
            {"mutation_rate": -0.1},
            {"n_elites": 64, "population_size": 64},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GAConfig(**kwargs)


class TestGeneticAlgorithm:
    def make_ga(self, generations=10, population=8):
        return GeneticAlgorithm(
            GAConfig(
                population_size=population,
                n_generations=generations,
                n_elites=2,
            )
        )

    def test_trace_covers_every_generation(self, tiny_problem, rng):
        result = self.make_ga().run(
            Evaluator(tiny_problem), RandomInitializer(), rng
        )
        assert result.n_generations == 10
        assert len(result.trace) == 11
        assert result.trace.generations == list(range(11))

    def test_best_fitness_monotone_with_elitism(self, tiny_problem, rng):
        result = self.make_ga(generations=15).run(
            Evaluator(tiny_problem), RandomInitializer(), rng
        )
        fitness = result.trace.best_fitnesses
        assert all(b >= a - 1e-12 for a, b in zip(fitness, fitness[1:]))

    def test_improves_over_initial_population(self, tiny_problem, rng):
        evaluator = Evaluator(tiny_problem)
        result = self.make_ga(generations=20).run(
            evaluator, RandomInitializer(), rng
        )
        assert result.best.fitness >= result.trace[0].best_fitness

    def test_zero_generations_returns_initial_best(self, tiny_problem, rng):
        result = self.make_ga(generations=0).run(
            Evaluator(tiny_problem), RandomInitializer(), rng
        )
        assert result.n_generations == 0
        assert len(result.trace) == 1

    def test_fitness_target_stops_early(self, tiny_problem, rng):
        result = self.make_ga(generations=100).run(
            Evaluator(tiny_problem),
            RandomInitializer(),
            rng,
            fitness_target=0.0,
        )
        assert result.n_generations <= 1

    def test_deterministic_given_seed(self, tiny_problem):
        scores = []
        for _ in range(2):
            result = self.make_ga(generations=5).run(
                Evaluator(tiny_problem),
                RandomInitializer(),
                np.random.default_rng(31),
            )
            scores.append(result.best.fitness)
        assert scores[0] == scores[1]

    def test_evaluation_accounting(self, tiny_problem, rng):
        evaluator = Evaluator(tiny_problem)
        result = self.make_ga(generations=5).run(
            evaluator, RandomInitializer(), rng
        )
        assert result.n_evaluations == evaluator.n_evaluations
        assert result.trace.final().n_evaluations == result.n_evaluations

    def test_result_properties(self, tiny_problem, rng):
        result = self.make_ga(generations=3).run(
            Evaluator(tiny_problem), RandomInitializer(), rng
        )
        assert result.giant_size == result.best.giant_size
        assert result.covered_clients == result.best.covered_clients


class TestGATrace:
    def make_record(self, generation, giant=3):
        return GenerationRecord(
            generation=generation,
            best_fitness=0.5,
            mean_fitness=0.3,
            best_giant_size=giant,
            best_covered_clients=7,
            diversity=1.0,
            n_evaluations=generation * 10,
        )

    def test_order_enforced(self):
        trace = GATrace()
        trace.append(self.make_record(0))
        with pytest.raises(ValueError, match="out of order"):
            trace.append(self.make_record(0))

    def test_accessors(self):
        trace = GATrace()
        for g in range(5):
            trace.append(self.make_record(g, giant=g))
        assert trace.generations == [0, 1, 2, 3, 4]
        assert trace.giant_sizes == [0, 1, 2, 3, 4]
        assert trace.at_generation(3).best_giant_size == 3
        with pytest.raises(KeyError):
            trace.at_generation(99)
        assert trace.final().generation == 4

    def test_sampled_includes_endpoints(self):
        trace = GATrace()
        for g in range(11):
            trace.append(self.make_record(g))
        sampled = trace.sampled(4)
        assert sampled[0].generation == 0
        assert sampled[-1].generation == 10
        assert [r.generation for r in sampled] == [0, 4, 8, 10]

    def test_sampled_validation(self):
        trace = GATrace()
        with pytest.raises(ValueError):
            trace.sampled(0)

    def test_record_as_dict(self):
        d = self.make_record(2).as_dict()
        assert d["generation"] == 2
        assert "diversity" in d
