"""Unit and property tests for mutation operators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Point
from repro.core.grid import GridArea
from repro.core.solution import Placement
from repro.genetic.mutation import (
    CompositeMutation,
    GeneSwapMutation,
    JiggleMutation,
    ResetMutation,
    TowardCentroidMutation,
)

ALL_OPERATORS = [
    JiggleMutation(),
    ResetMutation(),
    GeneSwapMutation(),
    TowardCentroidMutation(),
    CompositeMutation([JiggleMutation(), ResetMutation()]),
]


def random_placement(seed: int, n: int = 10, size: int = 20) -> Placement:
    return Placement.random(GridArea(size, size), n, np.random.default_rng(seed))


@pytest.mark.parametrize("operator", ALL_OPERATORS, ids=lambda o: o.name)
class TestCommonBehaviour:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_result_is_valid_placement(self, operator, seed):
        placement = random_placement(seed)
        mutated = operator.mutate(placement, np.random.default_rng(seed + 1))
        assert len(mutated) == len(placement)
        assert len(mutated.occupied) == len(placement)
        assert all(placement.grid.contains(c) for c in mutated)

    def test_original_untouched(self, operator):
        placement = random_placement(0)
        cells = placement.cells
        operator.mutate(placement, np.random.default_rng(1))
        assert placement.cells == cells

    def test_deterministic_given_seed(self, operator):
        placement = random_placement(5)
        a = operator.mutate(placement, np.random.default_rng(9))
        b = operator.mutate(placement, np.random.default_rng(9))
        assert a.cells == b.cells


class TestJiggle:
    def test_displacement_bounded(self):
        placement = random_placement(1)
        operator = JiggleMutation(radius=3, per_gene_rate=1.0)
        mutated = operator.mutate(placement, np.random.default_rng(2))
        for before, after in zip(placement, mutated):
            assert max(abs(after.x - before.x), abs(after.y - before.y)) <= 3

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            JiggleMutation(per_gene_rate=0.0)
        with pytest.raises(ValueError):
            JiggleMutation(radius=0)

    def test_full_neighborhood_keeps_router(self, rng):
        # A completely packed grid leaves no room to jiggle.
        grid = GridArea(3, 3)
        placement = Placement.from_cells(grid, list(grid.cells()))
        mutated = JiggleMutation(radius=1, per_gene_rate=1.0).mutate(
            placement, rng
        )
        assert set(mutated.cells) == set(placement.cells)


class TestReset:
    def test_exactly_count_routers_moved_at_most(self):
        placement = random_placement(3)
        mutated = ResetMutation(count=2).mutate(placement, np.random.default_rng(4))
        moved = sum(1 for a, b in zip(placement, mutated) if a != b)
        assert moved <= 2

    def test_count_validation(self):
        with pytest.raises(ValueError):
            ResetMutation(count=0)

    def test_count_larger_than_fleet_clamped(self, rng):
        placement = random_placement(7, n=3)
        mutated = ResetMutation(count=100).mutate(placement, rng)
        assert len(mutated) == 3


class TestGeneSwap:
    def test_preserves_occupied_cells(self):
        placement = random_placement(5)
        mutated = GeneSwapMutation().mutate(placement, np.random.default_rng(6))
        assert mutated.occupied == placement.occupied

    def test_exactly_two_genes_change(self):
        placement = random_placement(6)
        mutated = GeneSwapMutation().mutate(placement, np.random.default_rng(7))
        changed = [i for i in range(len(placement)) if placement[i] != mutated[i]]
        assert len(changed) == 2

    def test_single_router_noop(self, rng):
        placement = random_placement(8, n=1)
        assert GeneSwapMutation().mutate(placement, rng) is placement


class TestTowardCentroid:
    def test_moved_router_closer_to_centroid(self):
        # A placement with one distant outlier: any mutation of the
        # outlier must move it towards the pack (modulo jitter).
        grid = GridArea(64, 64)
        cells = [Point(x, y) for x in range(3) for y in range(3)]
        cells.append(Point(60, 60))
        placement = Placement.from_cells(grid, cells)
        operator = TowardCentroidMutation(max_step_fraction=1.0, jitter=0)
        centroid = placement.positions_array().mean(axis=0)
        for seed in range(30):
            mutated = operator.mutate(placement, np.random.default_rng(seed))
            for i in range(len(placement)):
                if mutated[i] != placement[i]:
                    before = np.hypot(*(np.array(placement[i]) - centroid))
                    after = np.hypot(*(np.array(mutated[i]) - centroid))
                    assert after <= before + 1e-9

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TowardCentroidMutation(max_step_fraction=0.0)
        with pytest.raises(ValueError):
            TowardCentroidMutation(jitter=-1)


class TestComposite:
    def test_weights_normalized(self):
        composite = CompositeMutation(
            [JiggleMutation(), ResetMutation()], weights=[1.0, 3.0]
        )
        assert composite.probabilities[1] == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            CompositeMutation([])
        with pytest.raises(ValueError):
            CompositeMutation([JiggleMutation()], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            CompositeMutation([JiggleMutation()], weights=[0.0])

    def test_zero_weight_operator_never_used(self):
        class Exploding(JiggleMutation):
            def mutate(self, placement, rng):
                raise AssertionError("zero-weight operator used")

        composite = CompositeMutation(
            [JiggleMutation(), Exploding()], weights=[1.0, 0.0]
        )
        placement = random_placement(9)
        for seed in range(10):
            composite.mutate(placement, np.random.default_rng(seed))
