"""Shared fixtures for the lint-engine tests.

``project`` builds a throwaway project skeleton (a ``setup.py`` root
marker plus whatever files a test writes) so rules run against
controlled fixtures instead of the real tree; ``lint_file`` is the
one-call helper most rule tests use.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import run_lint


class Project:
    def __init__(self, root: Path) -> None:
        self.root = root
        (root / "setup.py").write_text("# root marker\n")

    def write(self, relpath: str, source: str) -> Path:
        path = self.root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return path

    def lint(self, *relpaths: str, **kwargs):
        paths = [self.root / rel for rel in relpaths] or [self.root]
        return run_lint(paths, root=self.root, **kwargs)


@pytest.fixture
def project(tmp_path) -> Project:
    return Project(tmp_path)


@pytest.fixture
def lint_file(project):
    """Write one file and lint it; returns the findings list."""

    def _lint(
        source: str, relpath: str = "src/repro/mod.py", **kwargs
    ):
        project.write(relpath, source)
        return project.lint(relpath, **kwargs).findings

    return _lint


def codes(findings) -> list[str]:
    return [finding.rule for finding in findings]
