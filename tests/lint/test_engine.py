"""Engine mechanics: suppressions, allowlists, aliases, orchestration."""

from __future__ import annotations

import pytest

from repro.lint import run_lint
from repro.lint.engine import FileContext, collect_files, find_project_root

from tests.lint.conftest import codes


class TestSuppressions:
    def test_disable_all_silences_every_rule(self, lint_file):
        findings = lint_file(
            """
            import time

            def stamp():
                return hash(time.time())  # repro-lint: disable=all
            """
        )
        assert findings == []

    def test_multiple_codes_in_one_comment(self, lint_file):
        findings = lint_file(
            """
            import time

            def stamp():
                return hash(time.time())  # repro-lint: disable=RL001, RL004
            """
        )
        assert findings == []

    def test_suppression_is_per_line(self, lint_file):
        findings = lint_file(
            """
            import time

            def stamp():
                a = time.time()  # repro-lint: disable=RL004
                b = time.time()
                return a - b
            """
        )
        assert codes(findings) == ["RL004"]

    def test_wrong_code_does_not_silence(self, lint_file):
        findings = lint_file(
            """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=RL001
            """
        )
        assert codes(findings) == ["RL004"]


class TestAllowlists:
    def test_no_default_allowlist_flag(self, lint_file):
        source = """
            import time

            def measure():
                return time.perf_counter()
            """
        assert lint_file(source, relpath="benchmarks/bench.py") == []
        findings = lint_file(
            source,
            relpath="benchmarks/bench.py",
            use_default_allowlist=False,
        )
        assert codes(findings) == ["RL004"]

    def test_directory_config_disables_subtree(self, project):
        source = """
            import time

            def measure():
                return time.perf_counter()
            """
        project.write("src/repro/sandbox/mod.py", source)
        assert codes(project.lint("src").findings) == ["RL004"]
        project.write(
            "src/repro/sandbox/.repro-lint",
            "# local experiment sandbox\ndisable = RL004\n",
        )
        assert project.lint("src").findings == []

    def test_directory_config_does_not_leak_upward(self, project):
        source = "import time\nx = time.time()\n"
        project.write("src/repro/sandbox/.repro-lint", "disable = RL004\n")
        project.write("src/repro/other/mod.py", source)
        assert codes(project.lint("src").findings) == ["RL004"]


class TestAliasResolution:
    def make_ctx(self, project, source: str) -> FileContext:
        path = project.write("src/repro/mod.py", source)
        return FileContext(path, "src/repro/mod.py", path.read_text())

    def test_import_as_alias(self, project):
        import ast

        ctx = self.make_ctx(project, "import numpy as np\nx = np.random.seed\n")
        attribute = ctx.tree.body[1].value
        assert ctx.resolve(attribute) == "numpy.random.seed"

    def test_from_import_alias(self, project):
        ctx = self.make_ctx(
            project, "from time import perf_counter as pc\nx = pc\n"
        )
        name_node = ctx.tree.body[1].value
        assert ctx.resolve(name_node) == "time.perf_counter"

    def test_aliased_banned_call_is_still_caught(self, lint_file):
        findings = lint_file(
            """
            from time import perf_counter as tick

            def measure():
                return tick()
            """
        )
        assert codes(findings) == ["RL004"]


class TestOrchestration:
    def test_parse_error_becomes_rl000_finding(self, project):
        project.write("src/repro/broken.py", "def broken(:\n")
        result = project.lint("src")
        assert not result.ok
        assert codes(result.all_findings) == ["RL000"]

    def test_select_and_ignore(self, project):
        project.write(
            "src/repro/mod.py",
            "import time\nx = hash(time.time())\n",
        )
        both = project.lint("src")
        assert codes(both.findings) == ["RL001", "RL004"]
        only_hash = project.lint("src", select=["RL001"])
        assert codes(only_hash.findings) == ["RL001"]
        no_clock = project.lint("src", ignore=["RL004"])
        assert codes(no_clock.findings) == ["RL001"]

    def test_unknown_rule_code_raises(self, project):
        project.write("src/repro/mod.py", "x = 1\n")
        with pytest.raises(ValueError, match="RL999"):
            project.lint("src", select=["RL999"])

    def test_findings_are_sorted_and_positioned(self, project):
        project.write(
            "src/repro/b.py", "import time\nx = time.time()\n"
        )
        project.write(
            "src/repro/a.py", "import time\ny = time.time()\n"
        )
        result = project.lint("src")
        assert [f.path for f in result.findings] == [
            "src/repro/a.py",
            "src/repro/b.py",
        ]
        assert all(f.line == 2 for f in result.findings)

    def test_collect_files_skips_hidden_and_pycache(self, tmp_path):
        (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
        (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / ".hidden").mkdir()
        (tmp_path / "pkg" / ".hidden" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "real.py").write_text("x = 1\n")
        files = collect_files([tmp_path])
        assert [path.name for path in files] == ["real.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_lint([tmp_path / "nope"], root=tmp_path)

    def test_find_project_root_walks_to_marker(self, tmp_path):
        (tmp_path / "setup.py").write_text("")
        nested = tmp_path / "src" / "repro" / "deep"
        nested.mkdir(parents=True)
        assert find_project_root(nested) == tmp_path
