"""CLI contract: exit codes, formats, rule listing."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.cli import main
from repro.lint.report import JSON_SCHEMA_VERSION

REPO_ROOT = Path(__file__).resolve().parents[2]


def write_project(tmp_path, source: str) -> Path:
    (tmp_path / "setup.py").write_text("")
    target = tmp_path / "src" / "repro" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text(source)
    return target


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_project(tmp_path, "x = 1\n")
        status = main([str(tmp_path / "src"), "--root", str(tmp_path)])
        assert status == 0
        assert "no findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        write_project(tmp_path, "import time\nx = time.time()\n")
        status = main([str(tmp_path / "src"), "--root", str(tmp_path)])
        assert status == 1
        out = capsys.readouterr().out
        assert "RL004" in out
        assert "src/repro/mod.py:2" in out

    def test_usage_error_exits_two(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path / "missing"), "--root", str(tmp_path)])
        assert excinfo.value.code == 2


class TestJsonFormat:
    def test_document_shape(self, tmp_path, capsys):
        write_project(tmp_path, "import time\nx = time.time()\n")
        status = main(
            [
                str(tmp_path / "src"),
                "--root",
                str(tmp_path),
                "--format=json",
            ]
        )
        assert status == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == JSON_SCHEMA_VERSION
        assert document["ok"] is False
        assert document["checked_files"] == 1
        assert document["summary"] == {"RL004": 1}
        (finding,) = document["findings"]
        assert finding["rule"] == "RL004"
        assert finding["path"] == "src/repro/mod.py"
        assert finding["line"] == 2

    def test_clean_json_is_ok(self, tmp_path, capsys):
        write_project(tmp_path, "x = 1\n")
        status = main(
            [
                str(tmp_path / "src"),
                "--root",
                str(tmp_path),
                "--format=json",
            ]
        )
        assert status == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["findings"] == []


class TestOptions:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL008"):
            assert code in out

    def test_select_narrows(self, tmp_path, capsys):
        write_project(tmp_path, "import time\nx = hash(time.time())\n")
        status = main(
            [
                str(tmp_path / "src"),
                "--root",
                str(tmp_path),
                "--select=RL001",
            ]
        )
        assert status == 1
        out = capsys.readouterr().out
        assert "RL001" in out
        assert "RL004" not in out

    def test_unknown_code_is_a_usage_error(self, tmp_path):
        write_project(tmp_path, "x = 1\n")
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    str(tmp_path / "src"),
                    "--root",
                    str(tmp_path),
                    "--select=RL999",
                ]
            )
        assert excinfo.value.code == 2


class TestModuleEntryPoint:
    def test_python_dash_m_runs(self, tmp_path):
        (tmp_path / "setup.py").write_text("")
        target = tmp_path / "src" / "repro" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("import time\nx = time.time()\n")
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.lint",
                str(tmp_path / "src"),
                "--root",
                str(tmp_path),
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode == 1
        assert "RL004" in completed.stdout
