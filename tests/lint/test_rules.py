"""Per-rule fixture suites: positive, negative, suppressed, allowlisted.

Each positive fixture reproduces the *historical bug pattern* the rule
was distilled from (the pre-PR-2 salted-``hash`` labels, the PR-5
caller-owned ``spawn`` state leak, the scattered env reads, ...), so a
rule regression means the original bug class could come back unseen.
"""

from __future__ import annotations

import pytest

from repro.lint.rules import RULES

from tests.lint.conftest import codes


class TestRL001BuiltinHash:
    def test_fires_on_salted_label_idiom(self, lint_file):
        # The pre-label_key replication idiom: instance labels derived
        # from builtin hash(), which PYTHONHASHSEED salts per process.
        findings = lint_file(
            """
            def instance_label(spec, seed):
                return hash((spec.name, seed)) % 2**32
            """
        )
        assert codes(findings) == ["RL001"]
        assert "label_key" in findings[0].message

    def test_clean_on_label_key(self, lint_file):
        findings = lint_file(
            """
            from repro.experiments.replication import label_key

            def instance_label(spec, seed):
                return label_key(spec.name, seed)
            """
        )
        assert findings == []

    def test_dunder_hash_methods_are_fine(self, lint_file):
        # Defining __hash__ is fine; *calling* builtin hash() is not.
        findings = lint_file(
            """
            class Key:
                def __hash__(self):
                    return 7
            """
        )
        assert findings == []

    def test_suppression_comment_silences(self, lint_file):
        findings = lint_file(
            """
            def cache_slot(key):
                return hash(key) % 64  # repro-lint: disable=RL001
            """
        )
        assert findings == []


class TestRL002GlobalRng:
    def test_fires_on_np_random_seed(self, lint_file):
        findings = lint_file(
            """
            import numpy as np

            def setup(seed):
                np.random.seed(seed)
                return np.random.rand(3)
            """
        )
        assert codes(findings) == ["RL002", "RL002"]

    def test_fires_on_stdlib_random_import(self, lint_file):
        findings = lint_file("import random\n")
        assert codes(findings) == ["RL002"]
        findings = lint_file("from random import shuffle\n")
        assert codes(findings) == ["RL002"]

    def test_explicit_generators_are_fine(self, lint_file):
        findings = lint_file(
            """
            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(np.random.SeedSequence(seed))
                return rng.random(3)
            """
        )
        assert findings == []

    def test_allowlisted_in_tests_tree(self, lint_file):
        findings = lint_file(
            "import random\n", relpath="tests/test_something.py"
        )
        assert findings == []


class TestRL003SpawnDiscipline:
    def test_fires_on_caller_owned_spawn(self, lint_file):
        # The PR-5 state leak: spawning a sequence the caller handed in
        # advances its counter, so replays depend on call history.
        findings = lint_file(
            """
            def shard_seeds(seq, n):
                return seq.spawn(n)
            """
        )
        assert codes(findings) == ["RL003"]
        assert "spawn counter" in findings[0].message

    def test_fresh_construction_is_fine(self, lint_file):
        findings = lint_file(
            """
            import numpy as np

            def shard_seeds(seed, n):
                sequence = np.random.SeedSequence(seed)
                return sequence.spawn(n)
            """
        )
        assert findings == []

    def test_fresh_copy_helpers_are_fine(self, lint_file):
        findings = lint_file(
            """
            from repro.seeding import fresh_sequence, spawn_children

            def shard_seeds(seq, n):
                children = spawn_children(seq, n)
                copied = fresh_sequence(seq)
                return children + copied.spawn(1)
            """
        )
        assert findings == []

    def test_fires_on_attribute_receiver(self, lint_file):
        findings = lint_file(
            """
            def shard(self, n):
                return self.sequence.spawn(n)
            """
        )
        assert codes(findings) == ["RL003"]

    def test_tuple_unpack_from_spawn_is_fresh(self, lint_file):
        findings = lint_file(
            """
            import numpy as np

            def nested(seed):
                root = np.random.SeedSequence(seed)
                left, right = root.spawn(2)
                return left.spawn(3)
            """
        )
        assert findings == []

    def test_seeding_module_itself_is_allowlisted(self, lint_file):
        findings = lint_file(
            """
            def fresh(seq):
                return seq.spawn(1)
            """,
            relpath="src/repro/seeding.py",
        )
        assert findings == []


class TestRL004WallClock:
    def test_fires_on_perf_counter_timing(self, lint_file):
        # The pre-clock-seam idiom: ad hoc elapsed-seconds timing.
        findings = lint_file(
            """
            import time

            def run(solver):
                started = time.perf_counter()
                solver.step()
                return time.perf_counter() - started
            """
        )
        assert codes(findings) == ["RL004", "RL004"]
        assert "DEFAULT_CLOCK" in findings[0].message

    def test_fires_on_from_import_and_datetime(self, lint_file):
        findings = lint_file(
            """
            from time import monotonic
            from datetime import datetime

            def stamp():
                return monotonic(), datetime.now()
            """
        )
        assert codes(findings) == ["RL004", "RL004"]

    def test_clock_seam_is_fine(self, lint_file):
        findings = lint_file(
            """
            from repro.anytime.deadline import DEFAULT_CLOCK

            def run(solver):
                started = DEFAULT_CLOCK.now()
                solver.step()
                return DEFAULT_CLOCK.now() - started
            """
        )
        assert findings == []

    def test_clock_module_is_allowlisted(self, lint_file):
        findings = lint_file(
            """
            import time

            def now():
                return time.monotonic()
            """,
            relpath="src/repro/anytime/deadline.py",
        )
        assert findings == []

    def test_benchmarks_are_allowlisted(self, lint_file):
        findings = lint_file(
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            relpath="benchmarks/bench_thing.py",
        )
        assert findings == []


class TestRL005EnvGates:
    def test_fires_on_raw_gate_reads(self, lint_file):
        # The pre-envgates idiom: 37 scattered os.environ call sites.
        findings = lint_file(
            """
            import os

            def compiled_enabled():
                if "REPRO_COMPILED" in os.environ:
                    return os.environ["REPRO_COMPILED"] != "0"
                return os.environ.get("REPRO_COMPILED", "1") != "0"
            """
        )
        assert codes(findings) == ["RL005", "RL005", "RL005"]
        assert "repro.envgates" in findings[0].message

    def test_resolves_module_level_key_constants(self, lint_file):
        findings = lint_file(
            """
            import os

            RUNTIME_ENV = "REPRO_RUNTIME"

            def runtime_enabled():
                return os.getenv(RUNTIME_ENV) != "0"
            """
        )
        assert codes(findings) == ["RL005"]

    def test_non_repro_variables_are_fine(self, lint_file):
        findings = lint_file(
            """
            import os

            def compiler():
                return os.environ.get("CC", "cc")
            """
        )
        assert findings == []

    def test_writes_are_out_of_scope(self, lint_file):
        findings = lint_file(
            """
            import os

            def degrade():
                os.environ["REPRO_COMPILED"] = "0"
                os.environ.pop("REPRO_COMPILED", None)
            """
        )
        assert findings == []

    def test_envgates_module_is_allowlisted(self, lint_file):
        findings = lint_file(
            """
            import os

            def raw():
                return os.environ.get("REPRO_COMPILED")
            """,
            relpath="src/repro/envgates.py",
        )
        assert findings == []


class TestRL006PoolOwnership:
    def test_fires_on_direct_pool_import(self, lint_file):
        findings = lint_file(
            """
            from concurrent.futures import ProcessPoolExecutor

            def fan_out(tasks):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(str, tasks))
            """
        )
        assert codes(findings) == ["RL006"]
        assert "repro.parallel" in findings[0].message

    def test_fires_on_shared_memory_import(self, lint_file):
        findings = lint_file(
            "from multiprocessing import shared_memory\n"
        )
        assert codes(findings) == ["RL006"]
        findings = lint_file("import multiprocessing.shared_memory\n")
        assert codes(findings) == ["RL006"]

    def test_fires_on_attribute_usage(self, lint_file):
        findings = lint_file(
            """
            import concurrent.futures

            def fan_out():
                return concurrent.futures.ProcessPoolExecutor(2)
            """
        )
        assert codes(findings) == ["RL006"]

    def test_parallel_layer_is_allowlisted(self, lint_file):
        source = "from concurrent.futures import ProcessPoolExecutor\n"
        for relpath in (
            "src/repro/parallel/runtime.py",
            "src/repro/instances/shm.py",
            "src/repro/resilience/supervisor.py",
        ):
            assert lint_file(source, relpath=relpath) == []

    def test_thread_pools_are_fine(self, lint_file):
        findings = lint_file(
            "from concurrent.futures import ThreadPoolExecutor\n"
        )
        assert findings == []


class TestRL007SilentExcept:
    def test_fires_on_swallowed_exception(self, lint_file):
        findings = lint_file(
            """
            def load(path):
                try:
                    return open(path).read()
                except OSError:
                    pass
            """
        )
        assert codes(findings) == ["RL007"]

    def test_fires_on_bare_except(self, lint_file):
        findings = lint_file(
            """
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
            """
        )
        assert codes(findings) == ["RL007"]
        assert "bare except" in findings[0].message

    def test_handled_exception_is_fine(self, lint_file):
        findings = lint_file(
            """
            def load(path):
                try:
                    return open(path).read()
                except OSError as exc:
                    raise RuntimeError(f"cannot load {path}") from exc
            """
        )
        assert findings == []

    def test_justified_suppression_silences(self, lint_file):
        findings = lint_file(
            """
            def close(handle):
                try:
                    handle.close()
                except Exception:  # repro-lint: disable=RL007
                    # Best-effort teardown.
                    pass
            """
        )
        assert findings == []


class TestRL008EngineParity:
    ENGINE_MODULE = """
        __all__ = ["covered_entry", "uncovered_entry", "A_CONSTANT"]

        A_CONSTANT = 7

        def covered_entry():
            return 1

        def uncovered_entry():
            return 2

        def _private_helper():
            return 3
        """

    def test_fires_on_unreferenced_public_name(self, project):
        project.write(
            "src/repro/core/engine/extra.py", self.ENGINE_MODULE
        )
        project.write(
            "tests/core/test_extra.py",
            """
            from repro.core.engine.extra import covered_entry

            def test_covered_entry():
                assert covered_entry() == 1
            """,
        )
        findings = project.lint("src").findings
        assert codes(findings) == ["RL008"]
        assert "uncovered_entry" in findings[0].message
        assert findings[0].path == "src/repro/core/engine/extra.py"

    def test_clean_when_every_name_is_referenced(self, project):
        project.write(
            "src/repro/core/engine/extra.py", self.ENGINE_MODULE
        )
        project.write(
            "tests/core/test_extra.py",
            """
            from repro.core.engine.extra import covered_entry, uncovered_entry
            """,
        )
        assert project.lint("src").findings == []

    def test_private_and_undeclared_names_are_exempt(self, project):
        project.write(
            "src/repro/core/engine/extra.py",
            """
            __all__ = ["visible"]

            def visible():
                return 1

            def helper_not_in_all():
                return 2
            """,
        )
        project.write(
            "tests/core/test_extra.py", "from x import visible\n"
        )
        assert project.lint("src").findings == []

    def test_suppression_at_def_site_silences(self, project):
        project.write(
            "src/repro/core/engine/extra.py",
            """
            def unstable_api():  # repro-lint: disable=RL008
                return 1
            """,
        )
        project.write("tests/core/test_extra.py", "")
        assert project.lint("src").findings == []

    def test_non_engine_modules_are_ignored(self, project):
        project.write(
            "src/repro/solvers/extra.py",
            """
            def totally_untested():
                return 1
            """,
        )
        assert project.lint("src").findings == []


class TestRegistry:
    def test_eight_rules_with_stable_codes(self):
        assert sorted(RULES) == [f"RL00{i}" for i in range(1, 9)]

    def test_every_rule_is_documented(self):
        for rule in RULES.values():
            assert rule.name
            assert rule.description
            assert rule.scope in {"file", "project"}
