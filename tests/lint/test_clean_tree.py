"""The meta-invariant: the committed tree itself lints clean.

This is the test that keeps the other eight honest — every rule runs
over ``src/ tests/ benchmarks/`` exactly as CI's ``static-analysis``
job invokes it, so a change that violates an invariant (or breaks a
rule's precision on real code) fails tier 1 locally.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_committed_tree_is_clean():
    result = run_lint(
        [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
        root=REPO_ROOT,
    )
    assert result.errors == []
    assert result.findings == [], "\n" + "\n".join(
        finding.render() for finding in result.findings
    )
    # Sanity: the run actually covered the real tree.
    assert len(result.checked_files) > 100
