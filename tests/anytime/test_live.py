"""The live re-optimization loop: SLAs, shedding, determinism."""

from __future__ import annotations

import math

import pytest

from repro.anytime import (
    CancelToken,
    Deadline,
    DEFAULT_LADDER,
    LadderRung,
    LiveRunner,
)
from repro.anytime.live import _scaled_solver, _select_rung
from repro.scenario import Scenario, ScenarioRunner
from repro.solvers import make_solver


def fingerprint(result):
    return (
        tuple(map(tuple, result.best.placement.positions_array())),
        result.best.fitness,
        result.n_evaluations,
        result.n_phases,
        result.stopped_by,
    )


@pytest.fixture
def drift(tiny_problem):
    return Scenario.client_drift(tiny_problem, 4)


class TestNoPressureParity:
    def test_bit_identical_to_scenario_runner(self, drift):
        baseline = ScenarioRunner(
            "search:swap", budget=4, n_candidates=6
        ).run(drift, seed=11)
        live = LiveRunner(
            "search:swap", budget=4, n_candidates=6,
            sla=1e6, interval=1e6, seconds_per_evaluation=1e-6,
        ).run(drift, seed=11)
        assert live.shed_count == 0
        assert live.deadline_hits == 0
        assert [fingerprint(s.result) for s in baseline.steps] == [
            fingerprint(e.result) for e in live.responded
        ]

    def test_simulated_run_is_reproducible(self, drift):
        def once():
            return LiveRunner(
                "search:swap", budget=3, n_candidates=4,
                sla=0.05, interval=0.02, seconds_per_evaluation=0.004,
            ).run(drift, seed=7)

        first, second = once(), once()
        assert first.events == second.events
        assert [fingerprint(e.result) for e in first.responded] == [
            fingerprint(e.result) for e in second.responded
        ]


class TestOffload:
    def test_offloaded_run_is_bit_identical_in_simulated_mode(self, drift):
        def run(offload):
            return LiveRunner(
                "search:swap", budget=3, n_candidates=4,
                sla=0.05, interval=0.02, seconds_per_evaluation=0.004,
                offload=offload,
            ).run(drift, seed=7)

        inproc, offloaded = run(False), run(True)
        # The whole timeline — rungs, shedding, simulated latencies —
        # matches, not just the solutions: the worker re-derives each
        # event deadline from the same budget and the evaluation-charged
        # clock advances identically.
        assert inproc.events == offloaded.events
        assert [fingerprint(e.result) for e in inproc.responded] == [
            fingerprint(e.result) for e in offloaded.responded
        ]
        # The incumbent cache is a same-process perf hint; it never
        # rides back across the pool boundary.
        assert all(
            e.result.engine_cache is None for e in offloaded.responded
        )

    def test_offload_respects_the_runtime_gate(self, drift, monkeypatch):
        from repro.parallel.runtime import RUNTIME_ENV

        monkeypatch.setenv(RUNTIME_ENV, "0")
        gated = LiveRunner(
            "search:swap", budget=3, n_candidates=4,
            sla=0.05, interval=0.02, seconds_per_evaluation=0.004,
            offload=True,
        ).run(drift, seed=7)
        monkeypatch.delenv(RUNTIME_ENV)
        inproc = LiveRunner(
            "search:swap", budget=3, n_candidates=4,
            sla=0.05, interval=0.02, seconds_per_evaluation=0.004,
        ).run(drift, seed=7)
        assert gated.events == inproc.events

    def test_offload_with_run_deadline_stays_in_process(self, drift):
        # A run-level deadline shares a clock/token with the caller and
        # cannot cross a process boundary: the runner solves in-process
        # and still honors the external cancel.
        token = CancelToken()
        token.cancel()
        report = LiveRunner(
            "search:swap", budget=3, n_candidates=4,
            sla=0.05, interval=0.02, seconds_per_evaluation=0.004,
            offload=True,
        ).run(drift, seed=7, deadline=Deadline.cancellable(token))
        assert report.shed_count == len(report.events) - 1
        assert all(e.rung == "cancelled" for e in report.events[1:])


class TestOverloadShedding:
    def test_saturation_sheds_and_coalesces(self, drift):
        report = LiveRunner(
            "search:swap", budget=4, n_candidates=6,
            sla=0.02, interval=0.01, seconds_per_evaluation=0.005,
        ).run(drift, seed=11)
        assert report.shed_count > 0
        shed = [e for e in report.events if e.shed]
        for event in shed:
            assert event.result is None
            assert event.coalesced_into is not None
            assert event.coalesced_into > event.index
        # Every shed event's target was actually served.
        served = {e.index for e in report.responded}
        assert {e.coalesced_into for e in shed} <= served
        # The run still covers every step exactly once.
        assert sorted(e.index for e in report.events) == list(
            range(len(drift.perturbations) + 1)
        )

    def test_pressure_engages_degraded_rungs(self, drift):
        report = LiveRunner(
            "search:swap", budget=4, n_candidates=6,
            sla=0.02, interval=0.01, seconds_per_evaluation=0.005,
        ).run(drift, seed=11)
        assert set(report.rung_counts()) - {"full"}
        assert report.max_queue_depth() >= 1

    def test_generous_sla_never_sheds(self, drift):
        report = LiveRunner(
            "search:swap", budget=4, n_candidates=6,
            sla=1e6, interval=1e6, seconds_per_evaluation=1e-6,
        ).run(drift, seed=3)
        assert report.shed_count == 0
        assert report.rung_counts() == {"full": len(report.events)}


class TestRunCancellation:
    def test_cancelled_run_sheds_remaining_events(self, drift):
        token = CancelToken()
        token.cancel()
        report = LiveRunner(
            "search:swap", budget=4, n_candidates=6,
            sla=1e6, interval=1e6, seconds_per_evaluation=1e-6,
        ).run(drift, seed=11, deadline=Deadline.cancellable(token))
        # The in-flight event still responds (mask-out-and-finish) …
        assert len(report.responded) == 1
        assert report.responded[0].result.stopped_by == "cancelled"
        # … and the rest of the timeline is accounted as shed.
        assert report.shed_count == len(report.events) - 1


class TestLadder:
    def test_select_rung_picks_first_matching(self):
        assert _select_rung(DEFAULT_LADDER, 0.0).name == "full"
        assert _select_rung(DEFAULT_LADDER, 0.5).name == "shrink-candidates"
        assert _select_rung(DEFAULT_LADDER, 1.0).name == "shrink-chains"
        assert _select_rung(DEFAULT_LADDER, math.inf).name == "coalesce"

    def test_rung_rejects_bad_scales(self):
        with pytest.raises(ValueError):
            LadderRung("bad", 1.0, candidate_scale=0.0)
        with pytest.raises(ValueError):
            LadderRung("bad", 1.0, budget_scale=1.5)

    def test_scaled_solver_restores_knobs(self):
        solver = make_solver("search:swap", n_candidates=16)
        rung = LadderRung("half", 1.0, candidate_scale=0.5)
        with _scaled_solver(solver, rung):
            assert solver.n_candidates == 8
        assert solver.n_candidates == 16

    def test_scaled_solver_never_drops_below_one(self):
        solver = make_solver("search:swap", n_candidates=2)
        rung = LadderRung("tiny", 1.0, candidate_scale=0.01)
        with _scaled_solver(solver, rung):
            assert solver.n_candidates == 1
        assert solver.n_candidates == 2


class TestReport:
    @pytest.fixture
    def report(self, drift):
        return LiveRunner(
            "search:swap", budget=3, n_candidates=4,
            sla=0.05, interval=0.02, seconds_per_evaluation=0.002,
        ).run(drift, seed=5)

    def test_latency_percentiles_ordered(self, report):
        assert 0.0 <= report.p50_latency <= report.p95_latency

    def test_timeline_has_one_row_per_event(self, report):
        rows = report.timeline()
        assert len(rows) == len(report.events)
        for row in rows:
            assert {"step", "event", "rung", "shed", "latency"} <= set(row)

    def test_regret_against_unbounded_baseline(self, drift, report):
        baseline = ScenarioRunner(
            "search:swap", budget=3, n_candidates=4
        ).run(drift, seed=5)
        curve = report.regret_curve(baseline)
        assert len(curve) == len(report.responded)
        assert report.mean_regret(baseline) == pytest.approx(
            sum(regret for _, regret in curve) / len(curve)
        )

    def test_summary_mentions_sla(self, report):
        assert "SLA" in report.summary()


class TestValidation:
    def test_rejects_non_positive_sla(self):
        with pytest.raises(ValueError):
            LiveRunner("search:swap", sla=0.0)

    def test_rejects_bad_deadline_fraction(self):
        with pytest.raises(ValueError):
            LiveRunner("search:swap", sla=1.0, deadline_fraction=0.0)

    def test_rejects_empty_ladder(self):
        with pytest.raises(ValueError):
            LiveRunner("search:swap", sla=1.0, ladder=())

    def test_rejects_kwargs_with_solver_instance(self):
        solver = make_solver("search:swap")
        with pytest.raises(ValueError):
            LiveRunner(solver, sla=1.0, n_candidates=4)
