"""The cooperative cancellation protocol: clocks, tokens, deadlines."""

from __future__ import annotations

import math
import time

import pytest

from repro.anytime import (
    CancelToken,
    Deadline,
    MonotonicClock,
    SimulatedClock,
    SteppingClock,
)


class TestClocks:
    def test_monotonic_clock_advances(self):
        clock = MonotonicClock()
        first = clock.now()
        time.sleep(0.001)
        assert clock.now() > first

    def test_simulated_clock_only_moves_on_advance(self):
        clock = SimulatedClock(start=10.0)
        assert clock.now() == 10.0
        assert clock.now() == 10.0
        clock.advance(2.5)
        assert clock.now() == 12.5

    def test_simulated_clock_rejects_backward_steps(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_stepping_clock_ticks_per_read(self):
        clock = SteppingClock(dt=1.0)
        assert clock.now() == 0.0
        assert clock.now() == 1.0
        assert clock.now() == 2.0


class TestCancelToken:
    def test_starts_uncancelled(self):
        assert not CancelToken().cancelled

    def test_cancel_is_sticky(self):
        token = CancelToken()
        token.cancel()
        token.cancel()
        assert token.cancelled


class TestDeadline:
    def test_after_fires_when_clock_passes_expiry(self):
        clock = SimulatedClock()
        deadline = Deadline.after(5.0, clock=clock)
        assert deadline.stop_reason() is None
        assert not deadline.expired()
        clock.advance(5.0)
        assert deadline.stop_reason() == "deadline"
        assert deadline.expired()

    def test_at_absolute_expiry(self):
        clock = SimulatedClock(start=100.0)
        deadline = Deadline.at(101.0, clock=clock)
        assert deadline.stop_reason() is None
        clock.advance(1.5)
        assert deadline.stop_reason() == "deadline"

    def test_after_rejects_non_finite(self):
        with pytest.raises(ValueError):
            Deadline.after(math.nan)

    def test_cancellable_reports_cancelled(self):
        token = CancelToken()
        deadline = Deadline.cancellable(token)
        assert deadline.stop_reason() is None
        token.cancel()
        assert deadline.stop_reason() == "cancelled"

    def test_conjunction_fires_on_earliest_limit(self):
        clock = SimulatedClock()
        both = Deadline.after(2.0, clock=clock) & Deadline.after(
            10.0, clock=clock
        )
        clock.advance(3.0)
        assert both.stop_reason() == "deadline"

    def test_cancellation_takes_precedence_over_expiry(self):
        clock = SimulatedClock()
        token = CancelToken()
        deadline = Deadline.after(1.0, clock=clock).with_token(token)
        clock.advance(2.0)
        token.cancel()
        assert deadline.stop_reason() == "cancelled"

    def test_remaining_is_min_over_limits(self):
        clock = SimulatedClock()
        deadline = Deadline.after(2.0, clock=clock) & Deadline.after(
            7.0, clock=clock
        )
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(3.0)
        assert deadline.remaining() == 0.0

    def test_remaining_unbounded_without_limits(self):
        assert Deadline.cancellable(CancelToken()).remaining() == math.inf

    def test_remaining_zero_once_cancelled(self):
        token = CancelToken()
        deadline = Deadline.after(100.0).with_token(token)
        token.cancel()
        assert deadline.remaining() == 0.0
