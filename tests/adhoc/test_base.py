"""Unit tests for the ad hoc method framework."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adhoc.base import (
    MethodNotApplicableError,
    PatternedAdHocMethod,
    nudge_to_free,
    resolve_collisions,
)
from repro.core.geometry import Point
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance


class ConstantPattern(PatternedAdHocMethod):
    """Test double: every pattern cell is the same corner cell."""

    name = "constant"

    def pattern_cells(self, problem, count, rng):
        return [Point(0, 0)] * count


class WrongCountPattern(PatternedAdHocMethod):
    name = "wrong-count"

    def pattern_cells(self, problem, count, rng):
        return [Point(0, 0)]


class NeverApplicable(ConstantPattern):
    name = "never"

    def is_applicable(self, grid):
        return False


class TestNudgeToFree:
    def test_free_cell_returned_as_is(self, grid, rng):
        assert nudge_to_free(grid, Point(5, 5), set(), rng) == Point(5, 5)

    def test_occupied_cell_nudges_to_neighbor(self, grid, rng):
        taken = {Point(5, 5)}
        nudged = nudge_to_free(grid, Point(5, 5), taken, rng)
        assert nudged != Point(5, 5)
        assert max(abs(nudged.x - 5), abs(nudged.y - 5)) == 1

    def test_out_of_grid_anchor_clamped(self, grid, rng):
        nudged = nudge_to_free(grid, Point(100, 100), set(), rng)
        assert nudged == Point(31, 31)

    def test_dense_occupancy_finds_distant_cell(self, rng):
        g = GridArea(4, 4)
        taken = set(g.cells()) - {Point(3, 3)}
        assert nudge_to_free(g, Point(0, 0), taken, rng) == Point(3, 3)

    def test_full_grid_raises(self, rng):
        g = GridArea(2, 2)
        with pytest.raises(ValueError, match="no free cell"):
            nudge_to_free(g, Point(0, 0), set(g.cells()), rng)


class TestResolveCollisions:
    def test_distinct_input_unchanged(self, grid, rng):
        cells = [Point(0, 0), Point(5, 5)]
        assert resolve_collisions(grid, cells, rng) == cells

    def test_duplicates_resolved(self, grid, rng):
        cells = [Point(3, 3)] * 5
        resolved = resolve_collisions(grid, cells, rng)
        assert len(set(resolved)) == 5
        # All stay near the anchor.
        assert all(max(abs(c.x - 3), abs(c.y - 3)) <= 2 for c in resolved)

    def test_respects_pre_taken(self, grid, rng):
        resolved = resolve_collisions(
            grid, [Point(0, 0)], rng, taken=[Point(0, 0)]
        )
        assert resolved[0] != Point(0, 0)


class TestPatternedMethod:
    def test_pattern_fraction_validation(self):
        with pytest.raises(ValueError):
            ConstantPattern(pattern_fraction=0.0)
        with pytest.raises(ValueError):
            ConstantPattern(pattern_fraction=1.5)

    def test_place_produces_valid_placement(self, tiny_problem, rng):
        placement = ConstantPattern().place(tiny_problem, rng)
        assert len(placement) == tiny_problem.n_routers
        assert len(placement.occupied) == tiny_problem.n_routers

    def test_pattern_share_honoured(self, tiny_problem, rng):
        placement = ConstantPattern(pattern_fraction=0.5).place(tiny_problem, rng)
        # Half the routers cluster near the corner anchor (nudged apart).
        near_corner = [
            c for c in placement if max(c.x, c.y) <= 4
        ]
        assert len(near_corner) >= tiny_problem.n_routers // 2

    def test_wrong_pattern_count_detected(self, tiny_problem, rng):
        with pytest.raises(ValueError, match="pattern cells"):
            WrongCountPattern().place(tiny_problem, rng)

    def test_strict_mode_raises_when_not_applicable(self, tiny_problem, rng):
        with pytest.raises(MethodNotApplicableError):
            NeverApplicable(strict=True).place(tiny_problem, rng)

    def test_lenient_mode_ignores_applicability(self, tiny_problem, rng):
        placement = NeverApplicable(strict=False).place(tiny_problem, rng)
        assert len(placement) == tiny_problem.n_routers

    def test_full_pattern_fraction(self, tiny_problem, rng):
        placement = ConstantPattern(pattern_fraction=1.0).place(tiny_problem, rng)
        assert len(placement) == tiny_problem.n_routers

    def test_repr_mentions_parameters(self):
        assert "pattern_fraction=0.9" in repr(ConstantPattern())
