"""Unit tests for the ad hoc method registry."""

from __future__ import annotations

import pytest

from repro.adhoc import (
    PAPER_METHOD_ORDER,
    RandomPlacement,
    available_methods,
    make_method,
    paper_methods,
    register_method,
)
from repro.adhoc import registry as registry_module


class TestRegistry:
    def test_paper_order_is_section3_order(self):
        assert PAPER_METHOD_ORDER == (
            "random",
            "colleft",
            "diag",
            "cross",
            "near",
            "corners",
            "hotspot",
        )

    def test_all_paper_methods_registered(self):
        assert set(PAPER_METHOD_ORDER) <= set(available_methods())

    def test_make_method_names_match(self):
        for name in PAPER_METHOD_ORDER:
            assert make_method(name).name == name

    def test_make_method_with_parameters(self):
        method = make_method("near", zone_fraction=0.2)
        assert method.zone_fraction == 0.2

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown ad hoc method"):
            make_method("magic")

    def test_paper_methods_order_and_types(self):
        methods = paper_methods()
        assert [m.name for m in methods] == list(PAPER_METHOD_ORDER)

    def test_register_custom(self, monkeypatch):
        monkeypatch.setattr(
            registry_module, "_FACTORIES", dict(registry_module._FACTORIES)
        )
        register_method("custom", RandomPlacement)
        assert isinstance(make_method("custom"), RandomPlacement)

    def test_register_duplicate_rejected(self, monkeypatch):
        monkeypatch.setattr(
            registry_module, "_FACTORIES", dict(registry_module._FACTORIES)
        )
        with pytest.raises(ValueError, match="already registered"):
            register_method("random", RandomPlacement)
