"""Unit tests for the seven concrete ad hoc placement methods.

Every method must produce a valid placement; each pattern method must
put its pattern share where its topology says (left band, diagonals,
central zone, corners, dense zones).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adhoc import (
    ColLeftPlacement,
    CornersPlacement,
    CrossPlacement,
    DiagPlacement,
    HotSpotPlacement,
    MethodNotApplicableError,
    NearPlacement,
    RandomPlacement,
    paper_methods,
)
from repro.core.density import DensityMap
from repro.core.geometry import Point
from repro.core.grid import GridArea
from repro.instances.catalog import tiny_spec


@pytest.mark.parametrize("method", paper_methods(), ids=lambda m: m.name)
class TestAllMethods:
    def test_valid_full_placement(self, method, tiny_problem, rng):
        placement = method.place(tiny_problem, rng)
        assert len(placement) == tiny_problem.n_routers
        assert len(placement.occupied) == tiny_problem.n_routers
        assert all(tiny_problem.grid.contains(c) for c in placement)

    def test_deterministic_for_same_seed(self, method, tiny_problem):
        a = method.place(tiny_problem, np.random.default_rng(3))
        b = method.place(tiny_problem, np.random.default_rng(3))
        assert a.cells == b.cells

    def test_works_on_minimal_fleet(self, method, rng):
        spec = tiny_spec()
        from dataclasses import replace

        problem = replace(spec, n_routers=1).generate()
        placement = method.place(problem, rng)
        assert len(placement) == 1


class TestRandom:
    def test_spreads_over_grid(self, tiny_problem, rng):
        placement = RandomPlacement().place(tiny_problem, rng)
        xs = {c.x for c in placement}
        assert len(xs) > 4  # not collapsed to a band


class TestColLeft:
    def test_pattern_in_left_band(self, tiny_problem, rng):
        method = ColLeftPlacement(band_width=2, pattern_fraction=0.9)
        placement = method.place(tiny_problem, rng)
        in_band = [c for c in placement if c.x < 4]
        n_pattern = round(0.9 * tiny_problem.n_routers)
        assert len(in_band) >= n_pattern

    def test_pattern_spans_height(self, tiny_problem, rng):
        placement = ColLeftPlacement(band_width=1).place(tiny_problem, rng)
        ys = sorted(c.y for c in placement if c.x <= 2)
        assert ys[0] < 6
        assert ys[-1] > 26

    def test_band_width_validation(self):
        with pytest.raises(ValueError):
            ColLeftPlacement(band_width=0)

    def test_effective_band_width_derived(self):
        method = ColLeftPlacement()
        assert method.effective_band_width(GridArea(128, 128)) == 4
        assert method.effective_band_width(GridArea(16, 16)) == 1


class TestDiag:
    def test_pattern_near_main_diagonal(self, tiny_problem, rng):
        placement = DiagPlacement().place(tiny_problem, rng)
        on_diagonal = [c for c in placement if abs(c.x - c.y) <= 3]
        assert len(on_diagonal) >= round(0.9 * tiny_problem.n_routers)

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            DiagPlacement(jitter=-1)

    def test_applicability_near_square_only(self):
        method = DiagPlacement()
        assert method.is_applicable(GridArea(100, 95))
        assert not method.is_applicable(GridArea(100, 50))

    def test_strict_mode_on_elongated_grid(self, rng):
        from dataclasses import replace

        problem = replace(tiny_spec(), width=64, height=16).generate()
        with pytest.raises(MethodNotApplicableError):
            DiagPlacement(strict=True).place(problem, rng)

    def test_jitter_spreads_band(self, tiny_problem, rng):
        placement = DiagPlacement(jitter=2).place(tiny_problem, rng)
        assert all(abs(c.x - c.y) <= 8 for c in placement if abs(c.x - c.y) <= 8)


class TestCross:
    def test_pattern_on_either_diagonal(self, tiny_problem, rng):
        placement = CrossPlacement().place(tiny_problem, rng)
        size = tiny_problem.grid.width - 1
        on_cross = [
            c
            for c in placement
            if abs(c.x - c.y) <= 3 or abs(c.x + c.y - size) <= 3
        ]
        assert len(on_cross) >= round(0.9 * tiny_problem.n_routers)

    def test_both_diagonals_used(self, tiny_problem, rng):
        placement = CrossPlacement().place(tiny_problem, rng)
        size = tiny_problem.grid.width - 1
        main = [c for c in placement if abs(c.x - c.y) <= 2]
        anti = [c for c in placement if abs(c.x + c.y - size) <= 2]
        assert len(main) >= 4
        assert len(anti) >= 4

    def test_applicability(self):
        assert not CrossPlacement().is_applicable(GridArea(100, 60))


class TestNear:
    def test_pattern_in_central_zone(self, tiny_problem, rng):
        method = NearPlacement(zone_fraction=0.5)
        placement = method.place(tiny_problem, rng)
        zone = method.central_zone(tiny_problem.grid)
        inside = [c for c in placement if zone.contains(c)]
        assert len(inside) >= round(0.9 * tiny_problem.n_routers)

    def test_explicit_zone_size(self, tiny_problem, rng):
        method = NearPlacement(zone_width=8, zone_height=6)
        zone = method.central_zone(tiny_problem.grid)
        assert zone.width == 8 and zone.height == 6
        assert zone.center == tiny_problem.grid.center

    def test_zone_smaller_than_pattern_overflows_gracefully(self, rng):
        problem = tiny_spec().generate()
        # 2x2 zone cannot hold ~14 pattern routers; nudging spills over.
        placement = NearPlacement(zone_width=2, zone_height=2).place(problem, rng)
        assert len(placement.occupied) == problem.n_routers

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NearPlacement(zone_fraction=0.0)
        with pytest.raises(ValueError):
            NearPlacement(zone_width=-2)


class TestCorners:
    def test_pattern_in_corner_zones(self, tiny_problem, rng):
        method = CornersPlacement(zone_fraction=0.25)
        placement = method.place(tiny_problem, rng)
        zones = method.corner_zones(tiny_problem.grid)
        inside = [
            c for c in placement if any(z.contains(c) for z in zones)
        ]
        assert len(inside) >= round(0.9 * tiny_problem.n_routers)

    def test_all_four_corners_used(self, tiny_problem, rng):
        method = CornersPlacement(zone_fraction=0.25)
        placement = method.place(tiny_problem, rng)
        zones = method.corner_zones(tiny_problem.grid)
        for zone in zones:
            assert any(zone.contains(c) for c in placement)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CornersPlacement(zone_fraction=0.6)
        with pytest.raises(ValueError):
            CornersPlacement(zone_height=0)


class TestHotSpot:
    def test_strongest_router_in_densest_zone(self, tiny_problem, rng):
        method = HotSpotPlacement()
        placement = method.place(tiny_problem, rng)
        width, height = method.window_size(tiny_problem.grid)
        density = DensityMap.build(
            tiny_problem.grid,
            tiny_problem.clients.positions,
            width,
            height,
        )
        densest = density.densest_window()
        strongest = tiny_problem.fleet.strongest()
        assert densest.contains(placement[strongest.router_id])

    def test_routers_follow_client_mass(self, tiny_problem, rng):
        placement = HotSpotPlacement().place(tiny_problem, rng)
        clients = tiny_problem.clients.positions
        centroid = clients.mean(axis=0)
        distances = np.linalg.norm(
            placement.positions_array() - centroid, axis=1
        )
        # Placements hug the client mass: mean distance well under the
        # grid diagonal.
        assert distances.mean() < tiny_problem.grid.width / 2

    def test_no_clients_falls_back(self, rng):
        from dataclasses import replace

        problem = replace(tiny_spec(), n_clients=0).generate()
        placement = HotSpotPlacement().place(problem, rng)
        assert len(placement.occupied) == problem.n_routers

    def test_window_size_derived_and_explicit(self):
        grid = GridArea(128, 128)
        assert HotSpotPlacement().window_size(grid) == (8, 8)
        assert HotSpotPlacement(window_width=5, window_height=9).window_size(
            grid
        ) == (5, 9)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HotSpotPlacement(window_fraction=0.0)
        with pytest.raises(ValueError):
            HotSpotPlacement(window_width=0)

    def test_quota_allocation_covers_fleet(self, tiny_problem, rng):
        # Regardless of zone counts, every router must be placed once.
        placement = HotSpotPlacement(window_fraction=0.5).place(
            tiny_problem, rng
        )
        assert len(placement) == tiny_problem.n_routers
