"""Property-based tests: every ad hoc method on arbitrary instances.

Hypothesis drives random instance shapes (grid aspect, fleet size,
client count, distribution) through all seven methods; the placement
invariants must hold everywhere, not just on the paper's frame.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adhoc.registry import PAPER_METHOD_ORDER, make_method
from repro.instances.generator import InstanceSpec


@st.composite
def instance_specs(draw):
    width = draw(st.integers(8, 48))
    height = draw(st.integers(8, 48))
    n_routers = draw(st.integers(1, min(24, width * height // 4)))
    n_clients = draw(st.integers(0, 40))
    distribution = draw(
        st.sampled_from(["uniform", "normal", "exponential", "weibull"])
    )
    seed = draw(st.integers(0, 10_000))
    return InstanceSpec(
        name="prop",
        width=width,
        height=height,
        n_routers=n_routers,
        n_clients=n_clients,
        distribution=distribution,
        min_radius=1.0,
        max_radius=5.0,
        seed=seed,
    )


@pytest.mark.parametrize("method_name", PAPER_METHOD_ORDER)
@settings(max_examples=15, deadline=None)
@given(spec=instance_specs(), method_seed=st.integers(0, 10_000))
def test_method_invariants_on_arbitrary_instances(method_name, spec, method_seed):
    problem = spec.generate()
    method = make_method(method_name)
    placement = method.place(problem, np.random.default_rng(method_seed))
    # Full fleet placed, all cells distinct and inside the grid.
    assert len(placement) == problem.n_routers
    assert len(placement.occupied) == problem.n_routers
    assert all(problem.grid.contains(cell) for cell in placement)


@settings(max_examples=10, deadline=None)
@given(spec=instance_specs(), method_seed=st.integers(0, 10_000))
def test_methods_are_deterministic_under_seed(spec, method_seed):
    problem = spec.generate()
    for method_name in PAPER_METHOD_ORDER:
        method = make_method(method_name)
        first = method.place(problem, np.random.default_rng(method_seed))
        second = method.place(problem, np.random.default_rng(method_seed))
        assert first.cells == second.cells, method_name
