"""The env-gate registry: typed accessors and the unknown-variable check."""

from __future__ import annotations

import warnings

import pytest

from repro import envgates


@pytest.fixture(autouse=True)
def rearmed_check():
    """Each test sees a fresh one-time unknown-variable check."""
    envgates.reset_unknown_check()
    yield
    envgates.reset_unknown_check()


class TestRegistry:
    def test_all_gates_registered(self):
        assert sorted(envgates.GATES) == [
            "REPRO_BENCH_JSON",
            "REPRO_COMPILED",
            "REPRO_COMPILED_CACHE",
            "REPRO_EXAMPLES_SMOKE",
            "REPRO_FAULT_INJECT",
            "REPRO_RUNTIME",
            "REPRO_SCALE",
            "REPRO_SHM_MIN_BYTES",
        ]

    def test_every_gate_documented(self):
        for gate in envgates.GATES.values():
            assert gate.kind in {"flag", "int", "path", "choice", "spec"}
            assert gate.description

    def test_raw_rejects_unregistered_names(self):
        with pytest.raises(KeyError, match="REPRO_NOT_A_GATE"):
            envgates.raw("REPRO_NOT_A_GATE")

    def test_raw_returns_exact_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED", "  weird ")
        assert envgates.raw("REPRO_COMPILED") == "  weird "


class TestFlagGates:
    @pytest.mark.parametrize("value", ["0", "false", "off", "no", "OFF", "No"])
    def test_falsy_spellings_disable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_COMPILED", value)
        assert envgates.compiled_enabled() is False
        monkeypatch.setenv("REPRO_RUNTIME", value)
        assert envgates.runtime_enabled() is False

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes", "anything"])
    def test_everything_else_enables(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_COMPILED", value)
        assert envgates.compiled_enabled() is True

    def test_unset_defaults_to_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILED", raising=False)
        monkeypatch.delenv("REPRO_RUNTIME", raising=False)
        assert envgates.compiled_enabled() is True
        assert envgates.runtime_enabled() is True

    def test_reads_are_live(self, monkeypatch):
        # The supervisor flips the gate per task attempt; a cached
        # read would pin every retry to the first value seen.
        monkeypatch.setenv("REPRO_COMPILED", "1")
        assert envgates.compiled_enabled() is True
        monkeypatch.setenv("REPRO_COMPILED", "0")
        assert envgates.compiled_enabled() is False

    def test_examples_smoke_requires_exactly_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXAMPLES_SMOKE", "1")
        assert envgates.examples_smoke() is True
        monkeypatch.setenv("REPRO_EXAMPLES_SMOKE", "yes")
        assert envgates.examples_smoke() is False


class TestTypedAccessors:
    def test_shm_min_bytes_parses_and_clamps(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "1024")
        assert envgates.shm_min_bytes(65536) == 1024
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "-5")
        assert envgates.shm_min_bytes(65536) == 0
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "not-a-number")
        assert envgates.shm_min_bytes(65536) == 65536
        monkeypatch.delenv("REPRO_SHM_MIN_BYTES", raising=False)
        assert envgates.shm_min_bytes(65536) == 65536

    def test_scale_name_normalizes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "  PAPER ")
        assert envgates.scale_name("quick") == "paper"
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert envgates.scale_name("quick") == "quick"

    def test_fault_spec_strips(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", " kill@0 ")
        assert envgates.fault_spec() == "kill@0"
        monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
        assert envgates.fault_spec() == ""

    def test_path_gates_treat_empty_as_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_CACHE", "")
        assert envgates.compiled_cache_override() is None
        monkeypatch.setenv("REPRO_COMPILED_CACHE", "/tmp/cache")
        assert envgates.compiled_cache_override() == "/tmp/cache"
        monkeypatch.setenv("REPRO_BENCH_JSON", "")
        assert envgates.bench_json_dir() is None


class TestUnknownVariableCheck:
    def test_typo_warns_once_with_hint(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILD", "0")
        with pytest.warns(RuntimeWarning, match="REPRO_COMPILD"):
            unknown = envgates.check_environment(force=True)
        assert unknown == ["REPRO_COMPILD"]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # Second call is a no-op: the check already ran.
            assert envgates.check_environment() == []

    def test_hint_names_nearest_gate(self, monkeypatch, recwarn):
        monkeypatch.setenv("REPRO_COMPILD", "0")
        envgates.check_environment(force=True)
        message = str(recwarn.pop(RuntimeWarning).message)
        assert "did you mean REPRO_COMPILED?" in message

    def test_registered_gates_never_warn(self, monkeypatch):
        for name in envgates.GATES:
            monkeypatch.setenv(name, "1")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert envgates.check_environment(force=True) == []

    def test_accessors_trigger_the_check(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNTIM", "0")
        envgates.reset_unknown_check()
        with pytest.warns(RuntimeWarning, match="REPRO_RUNTIM"):
            envgates.runtime_enabled()
