"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clients import ClientSet
from repro.core.geometry import Point
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance
from repro.core.routers import RouterFleet
from repro.instances.catalog import tiny_spec


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def grid() -> GridArea:
    """A 32x32 grid."""
    return GridArea(32, 32)


@pytest.fixture
def tiny_problem() -> ProblemInstance:
    """The catalog's tiny instance (16 routers, 32x32, 48 normal clients)."""
    return tiny_spec().generate()


@pytest.fixture
def micro_problem() -> ProblemInstance:
    """A hand-built 4-router instance with known geometry.

    Routers 0-3 have radii 4, 3, 2 and 5; clients sit at known cells, so
    tests can compute links and coverage by hand.
    """
    grid = GridArea(16, 16)
    fleet = RouterFleet.from_radii([4.0, 3.0, 2.0, 5.0])
    clients = ClientSet.from_points(
        [Point(1, 1), Point(2, 2), Point(8, 8), Point(14, 14), Point(15, 0)],
        grid=grid,
    )
    return ProblemInstance(grid=grid, fleet=fleet, clients=clients)
