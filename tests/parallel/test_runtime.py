"""The persistent runtime: warm pools, broadcast lifecycle, recovery.

The invariants under test, in rough order of load-bearing-ness:

* results through the runtime are bit-identical to serial execution;
* a clean release keeps the pool warm (same worker processes serve the
  next call), a crash rebuilds the *pool* but never the *broadcast*;
* a broadcast released too early degrades to the pickle path via the
  supervisor's retry hook instead of failing the run;
* ``REPRO_RUNTIME=0`` bypasses the runtime wholesale.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.parallel import (
    ParallelRuntime,
    effective_pool_size,
    get_runtime,
    resolve_task_problem,
    runtime_enabled,
)
from repro.parallel.runtime import RUNTIME_ENV
from repro.resilience.faults import FAULT_ENV
from repro.resilience.supervisor import (
    RetryPolicy,
    SupervisionReport,
    run_supervised,
)


def _probe_shard(task):
    """Rows derived from the (possibly broadcast) problem plus seeds."""
    payload, seeds = task
    problem = resolve_task_problem(payload)
    base = float(
        problem.fleet.radii.sum() + problem.clients.positions.sum()
    )
    return [
        base + float(np.random.default_rng(seed).random()) for seed in seeds
    ]


SEED_SHARDS = [[0, 1], [2, 3], [4, 5]]


@pytest.fixture
def clean_env(monkeypatch):
    monkeypatch.delenv(FAULT_ENV, raising=False)
    monkeypatch.delenv("REPRO_COMPILED", raising=False)
    monkeypatch.delenv(RUNTIME_ENV, raising=False)


@pytest.fixture
def runtime(clean_env):
    # shm_min_bytes=0 forces broadcast even for the tiny test instance.
    with ParallelRuntime(shm_min_bytes=0) as rt:
        yield rt


@pytest.fixture
def expected(tiny_problem, clean_env):
    return run_supervised(
        _probe_shard,
        [(tiny_problem, seeds) for seeds in SEED_SHARDS],
        pool_provider=None,
    )


class TestSizingAndGate:
    def test_effective_pool_size_rule(self, monkeypatch):
        import repro.parallel.runtime as runtime_mod

        monkeypatch.setattr(runtime_mod, "_cpu_count", lambda: 4)
        assert effective_pool_size(8) == 4  # capped by cores
        assert effective_pool_size(2) == 2  # the request itself
        assert effective_pool_size(8, n_tasks=3) == 3  # capped by tasks
        assert effective_pool_size(8, n_tasks=0) == 1  # floored at 1

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", "No"])
    def test_runtime_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(RUNTIME_ENV, value)
        assert not runtime_enabled()

    @pytest.mark.parametrize("value", [None, "1", "on", "anything"])
    def test_runtime_enabled_values(self, monkeypatch, value):
        if value is None:
            monkeypatch.delenv(RUNTIME_ENV, raising=False)
        else:
            monkeypatch.setenv(RUNTIME_ENV, value)
        assert runtime_enabled()

    def test_disabled_runtime_skips_the_global_pool(
        self, clean_env, monkeypatch, tiny_problem, expected
    ):
        monkeypatch.setenv(RUNTIME_ENV, "0")
        before = get_runtime().stats.pool_creates
        got = run_supervised(
            _probe_shard,
            [(tiny_problem, seeds) for seeds in SEED_SHARDS],
            workers=2,
        )
        assert got == expected
        assert get_runtime().stats.pool_creates == before


class TestWarmPool:
    def test_clean_release_keeps_the_pool_warm(
        self, runtime, tiny_problem, expected
    ):
        tasks = [(tiny_problem, seeds) for seeds in SEED_SHARDS]
        first = run_supervised(
            _probe_shard, tasks, workers=2, pool_provider=runtime
        )
        pids = runtime.worker_pids()
        assert pids
        second = run_supervised(
            _probe_shard, tasks, workers=2, pool_provider=runtime
        )
        assert first == second == expected
        assert runtime.worker_pids() == pids  # the same warm processes
        assert runtime.stats.pool_creates == 1
        assert runtime.stats.pool_reuses >= 1

    def test_shutdown_is_idempotent_and_refuses_new_pools(self, runtime):
        runtime.acquire_pool(1)
        runtime.release_pool(runtime._pool, dirty=False)
        runtime.shutdown()
        runtime.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            runtime.acquire_pool(1)

    def test_global_runtime_recreated_after_shutdown(self, clean_env):
        first = get_runtime()
        first.shutdown()
        second = get_runtime()
        assert second is not first
        assert not second._closed


class TestBroadcastLifecycle:
    def test_rebroadcast_is_a_registry_hit(self, runtime, tiny_problem):
        ref = runtime.broadcast(tiny_problem)
        again = runtime.broadcast(tiny_problem)
        assert again is ref
        assert runtime.stats.publishes == 1
        assert runtime.stats.broadcast_hits == 1

    def test_below_threshold_stays_on_pickle_path(
        self, clean_env, tiny_problem
    ):
        with ParallelRuntime(shm_min_bytes=1 << 30) as rt:
            assert rt.broadcast(tiny_problem) is tiny_problem
            assert rt.stats.publishes == 0

    def test_parent_resolves_ref_to_the_source_instance(
        self, clean_env, tiny_problem
    ):
        # In the publishing process the registry short-circuits attach —
        # but only for the *global* runtime (workers never take this
        # branch: their pid differs from the publisher's).
        rt = get_runtime()
        rt._shm_min_bytes = 0
        try:
            ref = rt.broadcast(tiny_problem)
            assert resolve_task_problem(ref) is tiny_problem
        finally:
            rt.shutdown()

    def test_shutdown_unlinks_every_segment(self, clean_env, tiny_problem):
        rt = ParallelRuntime(shm_min_bytes=0)
        ref = rt.broadcast(tiny_problem)
        names = [ref.radii.name, ref.positions.name]
        assert all(os.path.exists(f"/dev/shm/{n}") for n in names)
        rt.shutdown()
        assert not any(os.path.exists(f"/dev/shm/{n}") for n in names)


class TestRecovery:
    def test_crash_rebuilds_pool_without_rebroadcast(
        self, runtime, monkeypatch, tiny_problem, expected
    ):
        ref = runtime.broadcast(tiny_problem)
        assert runtime.stats.publishes == 1
        tasks = [(ref, seeds) for seeds in SEED_SHARDS]
        monkeypatch.setenv(FAULT_ENV, "kill@1")
        report = SupervisionReport()
        got = run_supervised(
            _probe_shard,
            tasks,
            workers=2,
            policy=RetryPolicy(backoff=0.0, degrade_compiled=False),
            pool_provider=runtime,
            report=report,
        )
        assert got == expected
        assert report.kinds().get("crash", 0) >= 1
        assert runtime.stats.pool_rebuilds_dirty >= 1
        # The load-bearing invariant: the dead worker cost us the pool,
        # never the broadcast — nothing was republished.
        assert runtime.stats.publishes == 1
        assert runtime.broadcast(tiny_problem) is ref

    def test_attach_after_release_falls_back_to_pickle(
        self, runtime, tiny_problem, expected
    ):
        ref = runtime.broadcast(tiny_problem)
        runtime.release_broadcast(ref)  # segments are gone...
        tasks = [(ref, seeds) for seeds in SEED_SHARDS]
        report = SupervisionReport()
        got = run_supervised(
            _probe_shard,
            tasks,
            workers=2,
            policy=RetryPolicy(backoff=0.0),
            pool_provider=runtime,
            report=report,
        )
        # ...yet the run recovers: BroadcastLost retries re-ship the
        # source instance by pickle via the runtime's task_fallback.
        assert got == expected
        assert report.n_failures >= 1

    def test_task_fallback_only_rewrites_broadcast_losses(
        self, runtime, tiny_problem
    ):
        ref = runtime.broadcast(tiny_problem)
        task = (ref, [0, 1])
        swapped = runtime.task_fallback(
            0, task, "error", "BroadcastLost: segment gone"
        )
        assert swapped is not None
        assert swapped[0] is tiny_problem
        # Crashes must never rebroadcast or rewrite anything.
        assert runtime.task_fallback(0, task, "crash", "worker died") is None


class TestParity:
    def test_broadcast_results_match_serial_at_any_worker_count(
        self, runtime, tiny_problem, expected
    ):
        ref = runtime.broadcast(tiny_problem)
        tasks = [(ref, seeds) for seeds in SEED_SHARDS]
        for workers in (2, 3):
            got = run_supervised(
                _probe_shard, tasks, workers=workers, pool_provider=runtime
            )
            assert got == expected
