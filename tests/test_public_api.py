"""The public API surface: everything exported must resolve and work."""

from __future__ import annotations

import numpy as np
import pytest

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ exports missing {name}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackage_alls_resolve(self):
        import repro.adhoc
        import repro.core
        import repro.distributions
        import repro.experiments
        import repro.genetic
        import repro.instances
        import repro.neighborhood
        import repro.viz

        for module in (
            repro.adhoc,
            repro.core,
            repro.distributions,
            repro.experiments,
            repro.genetic,
            repro.instances,
            repro.neighborhood,
            repro.viz,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__} missing {name}"

    def test_quickstart_from_docstring(self):
        # The README / package docstring workflow must actually run.
        problem = repro.tiny_spec().generate()
        rng = np.random.default_rng(0)
        initial = repro.HotSpotPlacement().place(problem, rng)
        search = repro.NeighborhoodSearch(
            repro.SwapMovement(), n_candidates=4, max_phases=4
        )
        result = search.run(repro.Evaluator(problem), initial, rng)
        assert "giant=" in result.best.summary()

    def test_docstrings_on_public_classes(self):
        # Every public item carries a docstring (documentation deliverable).
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"
