"""Supervised execution: crash recovery, timeouts, retry, degradation.

The load-bearing assertion throughout: recovery is *verified* by the
determinism contract — a run that crashed, timed out and retried returns
**bit-identical** results to a fault-free run, serially and at any
worker count.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.resilience.faults import FAULT_ENV, FaultPlan
from repro.resilience.supervisor import (
    RetryExhaustedError,
    RetryPolicy,
    SupervisionReport,
    backoff_seconds,
    retry_call,
    run_supervised,
)


def _rng_shard(task):
    """Deterministic shard rows: pure function of the task's seeds."""
    return [float(np.random.default_rng(seed).random()) for seed in task]


TASKS = [[0, 1], [2, 3], [4, 5], [6, 7]]


@pytest.fixture
def clean_env(monkeypatch):
    monkeypatch.delenv(FAULT_ENV, raising=False)
    monkeypatch.delenv("REPRO_COMPILED", raising=False)


@pytest.fixture
def expected(clean_env):
    return run_supervised(_rng_shard, TASKS)


class TestPolicyValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_backoff_is_deterministic_capped_exponential(self):
        policy = RetryPolicy(
            backoff=0.1, backoff_factor=2.0, max_backoff=0.3, jitter=0.5
        )
        first = backoff_seconds(policy, 0)
        assert first == backoff_seconds(policy, 0)  # deterministic jitter
        assert 0.1 <= first <= 0.15
        assert backoff_seconds(policy, 10) <= 0.3 * 1.5  # capped

    def test_run_supervised_validates_inputs(self):
        with pytest.raises(ValueError, match="workers"):
            run_supervised(_rng_shard, TASKS, workers=0)
        with pytest.raises(ValueError, match="labels"):
            run_supervised(_rng_shard, TASKS, labels=["just-one"])
        assert run_supervised(_rng_shard, []) == []


class TestSerialSupervision:
    def test_fault_free_passthrough(self, clean_env, expected):
        assert run_supervised(_rng_shard, TASKS, workers=1) == expected

    def test_injected_faults_recover_bit_identical(
        self, monkeypatch, expected
    ):
        monkeypatch.setenv(FAULT_ENV, "kill@0,poison@2")
        report = SupervisionReport()
        got = run_supervised(
            _rng_shard,
            TASKS,
            policy=RetryPolicy(backoff=0.0, degrade_compiled=False),
            report=report,
        )
        assert got == expected
        assert report.kinds() == {"crash": 1, "error": 1}

    def test_exhaustion_names_the_shard(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "poison@1:99")
        labels = [f"cell{i} seeds {t[0]}..{t[1]}" for i, t in enumerate(TASKS)]
        with pytest.raises(
            RetryExhaustedError, match=r"cell1 seeds 2\.\.3"
        ) as excinfo:
            run_supervised(
                _rng_shard,
                TASKS,
                labels=labels,
                policy=RetryPolicy(max_retries=1, backoff=0.0),
            )
        assert excinfo.value.attempts == 2
        assert "poison" in excinfo.value.last_error

    def test_crash_degrades_to_numpy_engines(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILED", raising=False)
        monkeypatch.setenv(FAULT_ENV, "kill@0")
        seen = []
        report = SupervisionReport()
        with pytest.warns(RuntimeWarning, match="REPRO_COMPILED=0"):
            retry_call(
                lambda: seen.append(_compiled_env_value()),
                task=0,
                policy=RetryPolicy(backoff=0.0),
                report=report,
            )
        # The retried attempt ran with the compiled tier forced off...
        assert seen == ["0"]
        assert report.degraded == {0}
        # ...and the flag was restored afterwards (no lasting side effect).
        import os

        assert os.environ.get("REPRO_COMPILED") is None

    def test_on_result_fires_in_order(self, clean_env, expected):
        delivered = []
        run_supervised(
            _rng_shard,
            TASKS,
            on_result=lambda index, rows: delivered.append((index, rows)),
        )
        assert delivered == list(enumerate(expected))


def _compiled_env_value():
    import os

    return os.environ.get("REPRO_COMPILED")


class TestPoolSupervision:
    def test_fault_free_parity_across_workers(self, clean_env, expected):
        assert run_supervised(_rng_shard, TASKS, workers=4) == expected

    def test_worker_crash_mid_shard_recovers_bit_identical(
        self, monkeypatch, expected
    ):
        # kill@1 hard-exits the worker process (os._exit) on task 1's
        # first attempt; supervision rebuilds the pool and resubmits
        # only the unfinished tasks.
        monkeypatch.setenv(FAULT_ENV, "kill@1")
        report = SupervisionReport()
        got = run_supervised(
            _rng_shard,
            TASKS,
            workers=4,
            policy=RetryPolicy(backoff=0.0, degrade_compiled=False),
            report=report,
        )
        assert got == expected
        assert report.n_failures >= 1
        assert set(report.kinds()) <= {"crash"}

    def test_poison_in_pool_recovers_bit_identical(
        self, monkeypatch, expected
    ):
        monkeypatch.setenv(FAULT_ENV, "poison@0,poison@3")
        got = run_supervised(
            _rng_shard,
            TASKS,
            workers=2,
            policy=RetryPolicy(backoff=0.0),
        )
        assert got == expected

    def test_per_task_timeout_expiry_is_classified_and_bounded(
        self, monkeypatch
    ):
        # delay@0:5 outlasts the 0.3 s budget on every attempt: the hung
        # worker is abandoned each round and the task finally exhausts
        # with kind "timeout" — the pool never blocks forever.
        monkeypatch.setenv(FAULT_ENV, "delay@0:5")
        report = SupervisionReport()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(RetryExhaustedError, match="task 0"):
                run_supervised(
                    _rng_shard,
                    TASKS[:2],
                    workers=2,
                    policy=RetryPolicy(
                        max_retries=1, timeout=0.3, backoff=0.0
                    ),
                    report=report,
                )
        assert report.kinds().get("timeout", 0) >= 2

    def test_seeded_chaos_recovers_bit_identical(
        self, monkeypatch, expected
    ):
        plan = FaultPlan.seeded(5, len(TASKS), rate=0.6)
        assert plan, "seed 5 must inject something for this test to bite"
        monkeypatch.setenv(FAULT_ENV, plan.to_spec())
        got = run_supervised(
            _rng_shard,
            TASKS,
            workers=4,
            policy=RetryPolicy(backoff=0.0, degrade_compiled=False),
        )
        assert got == expected


class TestFleetUnderInjection:
    """The acceptance gate: a ScenarioFleet completes through injected
    crashes and compiled-tier poison with results bit-identical to a
    fault-free serial run."""

    def test_fleet_recovers_bit_identical(self, monkeypatch):
        from repro.instances.catalog import tiny_spec
        from repro.resilience.checkpoint import (
            scenario_result_to_dict,
            stable_scenario_dict,
        )
        from repro.scenario import Scenario, ScenarioFleet

        problem = tiny_spec(seed=3).generate()
        scenario = Scenario.client_drift(problem, 2)

        def build():
            return ScenarioFleet(
                [scenario],
                [("search:swap", {"n_candidates": 4})],
                n_seeds=2,
                budget=3,
                workers=None,
            )

        monkeypatch.delenv(FAULT_ENV, raising=False)
        clean = build().run(seed=9)

        # kill@0: hard worker death; crash-compiled@1: dies on every
        # attempt until supervision degrades the task to REPRO_COMPILED=0.
        monkeypatch.setenv(FAULT_ENV, "kill@0,crash-compiled@1")
        injected_fleet = build()
        injected_fleet.workers = 2
        report = SupervisionReport()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            injected = injected_fleet.run(seed=9, report=report)

        assert [
            stable_scenario_dict(scenario_result_to_dict(run.result))
            for run in injected.runs
        ] == [
            stable_scenario_dict(scenario_result_to_dict(run.result))
            for run in clean.runs
        ]
        assert report.n_failures >= 1
