"""The deterministic fault injector: grammar, seeding, firing semantics."""

from __future__ import annotations

import os

import pytest

from repro.resilience.faults import (
    FAULT_ENV,
    Fault,
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    active_plan,
    inject,
)


class TestGrammar:
    def test_parse_all_kinds(self):
        plan = FaultPlan.parse(
            "kill@0,poison@1:2,delay@2:0.5,crash-compiled@3"
        )
        assert [f.kind for f in plan.faults] == [
            "kill",
            "poison",
            "delay",
            "crash-compiled",
        ]
        assert [f.index for f in plan.faults] == [0, 1, 2, 3]
        assert plan.faults[1].param == 2
        assert plan.faults[2].param == 0.5

    def test_spec_round_trips(self):
        spec = "kill@0,poison@1:2,delay@2:0.5,crash-compiled@3"
        assert FaultPlan.parse(spec).to_spec() == spec

    def test_whitespace_and_empty_entries_tolerated(self):
        plan = FaultPlan.parse(" kill@1 , ,poison@2 ")
        assert len(plan.faults) == 2

    def test_bad_entries_rejected(self):
        with pytest.raises(ValueError, match="kind@index"):
            FaultPlan.parse("kill0")
        with pytest.raises(ValueError, match="not an integer"):
            FaultPlan.parse("kill@x")
        with pytest.raises(ValueError, match="not a number"):
            FaultPlan.parse("delay@1:soon")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("segfault@1")
        with pytest.raises(ValueError, match="must be >= 0"):
            Fault(kind="kill", index=-1, param=1.0)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.parse("")
        assert FaultPlan.parse("kill@0")


class TestSeeded:
    def test_same_seed_same_schedule(self):
        one = FaultPlan.seeded(11, 40)
        two = FaultPlan.seeded(11, 40)
        assert one == two
        assert one.faults  # rate=0.25 over 40 tasks: surely non-empty

    def test_different_seeds_differ(self):
        assert FaultPlan.seeded(1, 64) != FaultPlan.seeded(2, 64)

    def test_rate_zero_injects_nothing(self):
        assert not FaultPlan.seeded(3, 32, rate=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.seeded(0, 0)
        with pytest.raises(ValueError):
            FaultPlan.seeded(0, 4, rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan.seeded(0, 4, kinds=())


class TestFiring:
    def test_kill_fires_only_on_early_attempts(self):
        fault = Fault(kind="kill", index=0, param=2)
        assert fault.fires(0, degraded=False)
        assert fault.fires(1, degraded=False)
        assert not fault.fires(2, degraded=False)

    def test_crash_compiled_respects_degradation(self, monkeypatch):
        fault = Fault(kind="crash-compiled", index=0, param=1.0)
        monkeypatch.delenv("REPRO_COMPILED", raising=False)
        assert fault.fires(5, degraded=False)  # every attempt while enabled
        assert not fault.fires(0, degraded=True)
        monkeypatch.setenv("REPRO_COMPILED", "0")
        assert not fault.fires(0, degraded=False)

    def test_inject_raises_in_process(self):
        plan = FaultPlan.parse("poison@1")
        with pytest.raises(InjectedFault):
            inject(1, 0, plan=plan)
        inject(0, 0, plan=plan)  # other indices untouched
        inject(1, 1, plan=plan)  # retried attempt passes

    def test_inject_kill_in_process_is_catchable(self):
        plan = FaultPlan.parse("kill@2")
        with pytest.raises(InjectedCrash):
            inject(2, 0, plan=plan)


class TestActivePlan:
    def test_env_round_trip(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "poison@3:2")
        plan = active_plan()
        assert plan.to_spec() == "poison@3:2"
        monkeypatch.setenv(FAULT_ENV, "kill@1")
        assert active_plan().to_spec() == "kill@1"

    def test_unset_is_empty(self, monkeypatch):
        monkeypatch.delenv(FAULT_ENV, raising=False)
        assert not active_plan()
        assert os.environ.get(FAULT_ENV) is None
