"""``RetryPolicy(timeout=)`` on the serial path.

Regression suite for the serial/pooled timeout gap: pool tasks were
always abandoned at ``policy.timeout``, but :func:`retry_call` silently
ignored it.  The serial loop now enforces the same budget cooperatively
— every attempt of a ``deadline=``-accepting callable gets a fresh
``Deadline.after(policy.timeout)`` and truncates itself at its next
phase boundary.
"""

from __future__ import annotations

import pytest

from repro.anytime import Deadline
from repro.resilience import RetryPolicy, SupervisionReport, retry_call
from repro.scenario import Scenario, ScenarioRunner
from repro.solvers import make_solver


class TestDeadlineInjection:
    def test_timeout_passes_a_fresh_deadline(self):
        seen = {}

        def work(deadline=None):
            seen["deadline"] = deadline
            return 42

        assert retry_call(
            work, task=0, policy=RetryPolicy(timeout=5.0, backoff=0.0)
        ) == 42
        assert isinstance(seen["deadline"], Deadline)
        assert 0.0 < seen["deadline"].remaining() <= 5.0

    def test_no_timeout_means_no_deadline(self):
        def work(deadline="untouched"):
            return deadline

        assert retry_call(
            work, task=0, policy=RetryPolicy(backoff=0.0)
        ) == "untouched"

    def test_callable_without_deadline_keeps_old_behavior(self):
        # A legacy callable that cannot cooperate is still run (and
        # still unbounded) rather than rejected.
        assert retry_call(
            lambda: "ok", task=0, policy=RetryPolicy(timeout=5.0, backoff=0.0)
        ) == "ok"

    def test_each_attempt_gets_a_fresh_budget(self):
        remaining = []

        def work(deadline=None):
            remaining.append(deadline.remaining())
            if len(remaining) == 1:
                raise ValueError("first attempt poisoned")
            return "done"

        assert retry_call(
            work,
            task=0,
            policy=RetryPolicy(timeout=5.0, max_retries=2, backoff=0.0),
        ) == "done"
        assert len(remaining) == 2
        # The second attempt's deadline was rebuilt, not inherited
        # half-spent from the first.
        assert all(4.0 < budget <= 5.0 for budget in remaining)


class TestSerialPoolAgreement:
    def test_serial_solve_truncates_at_the_timeout(self, tiny_problem):
        """The serial path now bounds a solver step like the pool does —
        but by truncate-and-keep instead of abandon-and-retry."""
        solver = make_solver("search:swap", n_candidates=4)
        report = SupervisionReport()
        result = retry_call(
            lambda deadline=None: solver.solve(
                tiny_problem, seed=1, budget=50, deadline=deadline
            ),
            task=0,
            policy=RetryPolicy(timeout=1e-9, backoff=0.0),
            report=report,
        )
        assert result.stopped_by == "deadline"
        assert result.n_phases == 0
        assert result.n_evaluations > 0
        # Truncation is a successful attempt: no retry, no failure kinds.
        assert report.kinds() == {}

    def test_scenario_steps_are_bounded_by_policy_timeout(self, tiny_problem):
        scenario = Scenario.client_drift(tiny_problem, 2)
        outcome = ScenarioRunner(
            "search:swap",
            budget=20,
            n_candidates=4,
            policy=RetryPolicy(timeout=1e-9, backoff=0.0),
        ).run(scenario, seed=3)
        assert outcome.deadline_hits == len(outcome.steps)
        for step in outcome.steps:
            assert step.result.stopped_by == "deadline"
            assert step.result.n_evaluations > 0

    def test_generous_timeout_is_bit_identical_to_none(self, tiny_problem):
        scenario = Scenario.client_drift(tiny_problem, 2)

        def run(policy):
            return ScenarioRunner(
                "search:swap", budget=4, n_candidates=4, policy=policy
            ).run(scenario, seed=5)

        bare = run(None)
        bounded = run(RetryPolicy(timeout=1e9, backoff=0.0))
        assert [s.result.best.fitness for s in bare.steps] == [
            s.result.best.fitness for s in bounded.steps
        ]
        assert all(s.result.stopped_by is None for s in bounded.steps)
