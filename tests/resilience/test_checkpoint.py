"""Checkpoint/resume: atomic stores, serialization parity, exact resume.

The acceptance gate exercised here: an interrupted run resumed from its
checkpoint matches an uninterrupted run **exactly** (wall-clock fields
excluded), for the scenario fleet, the replication harnesses and the
serial scenario runner — and a checkpoint that no longer matches the
code/seeds is rejected loudly, never silently reused.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.replication import (
    replicate_movements,
    replicate_standalone,
)
from repro.instances.catalog import tiny_spec
from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointParityError,
    CheckpointStore,
    open_store,
    scenario_result_from_dict,
    scenario_result_to_dict,
    solve_result_from_dict,
    solve_result_to_dict,
    stable_scenario_dict,
)
from repro.scenario import Scenario, ScenarioFleet, ScenarioRunner
from repro.solvers import make_solver


@pytest.fixture(scope="module")
def problem():
    return tiny_spec(seed=7).generate()


MANIFEST = {"kind": "test", "seed_entropy": 42, "n": 3}


class TestStore:
    def test_fresh_store_writes_manifest_and_cells(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", MANIFEST)
        assert not store.resumed
        assert store.keys() == []
        store.save("cell-a", {"value": 1})
        assert store.has("cell-a")
        assert not store.has("cell-b")
        assert store.load("cell-a") == {"value": 1}
        assert store.keys() == ["cell-a"]
        # No stray temp files after the atomic publish.
        assert not list((tmp_path / "ck").glob(".*"))

    def test_reopen_with_matching_manifest_resumes(self, tmp_path):
        CheckpointStore(tmp_path, MANIFEST).save("x", {"v": 1})
        again = CheckpointStore(tmp_path, dict(MANIFEST))
        assert again.resumed
        assert again.keys() == ["x"]

    def test_manifest_mismatch_names_fields(self, tmp_path):
        CheckpointStore(tmp_path, MANIFEST)
        with pytest.raises(CheckpointError, match="seed_entropy"):
            CheckpointStore(tmp_path, {**MANIFEST, "seed_entropy": 43})

    def test_require_existing_refuses_cold_start(self, tmp_path):
        with pytest.raises(CheckpointError, match="nothing to resume"):
            CheckpointStore(
                tmp_path / "missing", MANIFEST, require_existing=True
            )

    def test_corrupt_cell_is_loud(self, tmp_path):
        store = CheckpointStore(tmp_path, MANIFEST)
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            store.load("bad")
        with pytest.raises(CheckpointError, match="no checkpointed cell"):
            store.load("never-saved")

    def test_key_validation(self, tmp_path):
        store = CheckpointStore(tmp_path, MANIFEST)
        with pytest.raises(ValueError, match="key"):
            store.save("../escape", {})
        with pytest.raises(ValueError, match="key"):
            store.has("a b")

    def test_open_store_semantics(self, tmp_path):
        assert open_store(MANIFEST) is None
        with pytest.raises(ValueError, match="same directory"):
            open_store(
                MANIFEST,
                checkpoint=str(tmp_path / "a"),
                resume_from=str(tmp_path / "b"),
            )
        created = open_store(MANIFEST, checkpoint=str(tmp_path / "a"))
        assert created is not None and not created.resumed
        resumed = open_store(MANIFEST, resume_from=str(tmp_path / "a"))
        assert resumed is not None and resumed.resumed


class TestSerialization:
    def test_solve_result_round_trip(self, problem):
        result = make_solver("tabu:swap", n_candidates=4).solve(
            problem, seed=3, budget=3
        )
        doc = solve_result_to_dict(result)
        restored = solve_result_from_dict(json.loads(json.dumps(doc)))
        assert restored.solver == result.solver
        assert restored.n_evaluations == result.n_evaluations
        assert restored.n_phases == result.n_phases
        assert restored.warm_started == result.warm_started
        assert restored.best.fitness == result.best.fitness
        assert restored.best.placement == result.best.placement
        assert restored.best.metrics == result.best.metrics
        # Serializing the restored object reproduces the document.
        assert solve_result_to_dict(restored) == json.loads(json.dumps(doc))

    def test_solve_result_rejects_foreign_documents(self):
        with pytest.raises(CheckpointError, match="format"):
            solve_result_from_dict({"format": "something.else"})

    def test_scenario_result_round_trip(self, problem):
        outcome = ScenarioRunner("search:swap", budget=3, n_candidates=4).run(
            Scenario.client_drift(problem, 2), seed=11
        )
        doc = scenario_result_to_dict(outcome)
        restored = scenario_result_from_dict(json.loads(json.dumps(doc)))
        assert restored.scenario_name == outcome.scenario_name
        assert restored.seed == outcome.seed
        assert restored.n_steps == outcome.n_steps
        assert [s.index for s in restored.steps] == [
            s.index for s in outcome.steps
        ]
        assert [s.event for s in restored.steps] == [
            s.event for s in outcome.steps
        ]
        assert scenario_result_to_dict(restored) == json.loads(json.dumps(doc))
        # Restored results drive the aggregation layers (fleet tables).
        assert restored.mean_fitness() == outcome.mean_fitness()
        assert restored.total_evaluations == outcome.total_evaluations


def _fleet(problem, workers=None):
    return ScenarioFleet(
        [Scenario.client_drift(problem, 2)],
        [("search:swap", {"n_candidates": 4})],
        n_seeds=2,
        budget=3,
        warm="both",
        workers=workers,
    )


def _stable_report(report):
    return [
        (
            run.scenario,
            run.solver,
            run.warm,
            run.replicate,
            stable_scenario_dict(scenario_result_to_dict(run.result)),
        )
        for run in report.runs
    ]


class TestFleetResume:
    def test_checkpoint_then_full_resume_matches(self, problem, tmp_path):
        directory = str(tmp_path / "fleet")
        baseline = _fleet(problem).run(seed=5, checkpoint=directory)
        resumed = _fleet(problem).run(seed=5, resume_from=directory)
        assert _stable_report(resumed) == _stable_report(baseline)

    def test_interrupted_run_resumes_to_uninterrupted_result(
        self, problem, tmp_path
    ):
        directory = tmp_path / "fleet"
        uninterrupted = _fleet(problem).run(seed=5)
        _fleet(problem).run(seed=5, checkpoint=str(directory))
        # Simulate the interruption: drop the cold arm's cells, as if
        # the run died halfway through the grid.
        removed = [p for p in directory.glob("*-cold-*.json")]
        assert removed, "expected cold-arm cells to exist"
        for path in removed:
            path.unlink()
        resumed = _fleet(problem).run(seed=5, resume_from=str(directory))
        assert _stable_report(resumed) == _stable_report(uninterrupted)

    def test_resume_works_across_worker_counts(self, problem, tmp_path):
        directory = str(tmp_path / "fleet")
        baseline = _fleet(problem).run(seed=5, checkpoint=directory)
        resumed = _fleet(problem, workers=2).run(seed=5, resume_from=directory)
        assert _stable_report(resumed) == _stable_report(baseline)

    def test_resume_rejects_different_grid(self, problem, tmp_path):
        directory = str(tmp_path / "fleet")
        _fleet(problem).run(seed=5, checkpoint=directory)
        with pytest.raises(CheckpointError, match="different run"):
            _fleet(problem).run(seed=6, resume_from=directory)

    def test_resume_from_nothing_is_an_error(self, problem, tmp_path):
        with pytest.raises(CheckpointError, match="nothing to resume"):
            _fleet(problem).run(
                seed=5, resume_from=str(tmp_path / "missing")
            )

    def test_corrupted_cell_fails_parity_verification(
        self, problem, tmp_path
    ):
        directory = tmp_path / "fleet"
        _fleet(problem).run(seed=5, checkpoint=str(directory))
        # Tamper with the cell the resume gate re-verifies (the first
        # restored shard's first replicate).
        victim = directory / "c000-warm-r000.json"
        payload = json.loads(victim.read_text())
        payload["steps"][0]["result"]["fitness"] += 0.25
        victim.write_text(json.dumps(payload))
        with pytest.raises(CheckpointParityError, match="does not"):
            _fleet(problem).run(seed=5, resume_from=str(directory))


class TestReplicationResume:
    def test_standalone_checkpoint_resume_matches(self, tmp_path):
        spec = tiny_spec(seed=7)
        directory = str(tmp_path / "standalone")
        kwargs = dict(n_seeds=3, methods=("random", "hotspot"))
        baseline = replicate_standalone(spec, checkpoint=directory, **kwargs)
        resumed = replicate_standalone(spec, resume_from=directory, **kwargs)
        assert resumed.keys() == baseline.keys()
        for method in baseline:
            for metric in baseline[method]:
                assert (
                    resumed[method][metric].values
                    == baseline[method][metric].values
                )

    def test_partial_standalone_resume_matches(self, tmp_path):
        spec = tiny_spec(seed=7)
        directory = tmp_path / "standalone"
        kwargs = dict(n_seeds=3, methods=("random", "hotspot"))
        baseline = replicate_standalone(
            spec, checkpoint=str(directory), **kwargs
        )
        victims = sorted(directory.glob("hotspot*.json"))
        assert victims
        for path in victims:
            path.unlink()
        resumed = replicate_standalone(
            spec, resume_from=str(directory), **kwargs
        )
        for method in baseline:
            for metric in baseline[method]:
                assert (
                    resumed[method][metric].values
                    == baseline[method][metric].values
                )

    def test_movements_resume_matches_across_worker_counts(self, tmp_path):
        spec = tiny_spec(seed=7)
        directory = str(tmp_path / "movements")
        kwargs = dict(n_seeds=2, n_candidates=4, max_phases=3)
        baseline = replicate_movements(spec, checkpoint=directory, **kwargs)
        resumed = replicate_movements(
            spec, resume_from=directory, workers=2, **kwargs
        )
        for label in baseline:
            for metric in baseline[label]:
                assert (
                    resumed[label][metric].values
                    == baseline[label][metric].values
                )


class TestRunnerResume:
    def _runner(self):
        return ScenarioRunner("search:swap", budget=3, n_candidates=4)

    def test_step_checkpoint_full_resume_matches(self, problem, tmp_path):
        scenario = Scenario.client_drift(problem, 2)
        directory = str(tmp_path / "run")
        baseline = self._runner().run(scenario, seed=11, checkpoint=directory)
        resumed = self._runner().run(scenario, seed=11, resume_from=directory)
        assert stable_scenario_dict(
            scenario_result_to_dict(resumed)
        ) == stable_scenario_dict(scenario_result_to_dict(baseline))

    def test_interrupted_steps_resume_to_uninterrupted(
        self, problem, tmp_path
    ):
        scenario = Scenario.client_drift(problem, 3)
        directory = tmp_path / "run"
        uninterrupted = self._runner().run(scenario, seed=11)
        self._runner().run(scenario, seed=11, checkpoint=str(directory))
        # The run "died" before the last two steps.
        (directory / "step002.json").unlink()
        (directory / "step003.json").unlink()
        resumed = self._runner().run(
            scenario, seed=11, resume_from=str(directory)
        )
        assert stable_scenario_dict(
            scenario_result_to_dict(resumed)
        ) == stable_scenario_dict(scenario_result_to_dict(uninterrupted))

    def test_tampered_step_fails_parity(self, problem, tmp_path):
        scenario = Scenario.client_drift(problem, 2)
        directory = tmp_path / "run"
        self._runner().run(scenario, seed=11, checkpoint=str(directory))
        victim = directory / "step000.json"
        payload = json.loads(victim.read_text())
        payload["result"]["n_evaluations"] += 1
        victim.write_text(json.dumps(payload))
        with pytest.raises(CheckpointParityError):
            self._runner().run(
                scenario, seed=11, resume_from=str(directory)
            )
