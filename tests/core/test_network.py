"""Unit tests for the router communication graph."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.geometry import Point
from repro.core.grid import GridArea
from repro.core.network import RouterNetwork, adjacency_matrix, link_edges
from repro.core.problem import ProblemInstance
from repro.core.radio import LinkRule
from repro.core.routers import RouterFleet
from repro.core.clients import ClientSet
from repro.core.solution import Placement


def line_problem(radii, link_rule=LinkRule.BIDIRECTIONAL):
    """Routers on a horizontal line at x = 0, 4, 8, ... for hand checks."""
    grid = GridArea(64, 8)
    fleet = RouterFleet.from_radii(radii)
    clients = ClientSet.from_points([])
    problem = ProblemInstance(
        grid=grid, fleet=fleet, clients=clients, link_rule=link_rule
    )
    placement = Placement.from_cells(
        grid, [Point(4 * i, 0) for i in range(len(radii))]
    )
    return problem, placement


class TestAdjacencyMatrix:
    def test_shape_and_diagonal(self):
        positions = np.array([[0.0, 0.0], [3.0, 0.0], [10.0, 0.0]])
        radii = np.array([5.0, 5.0, 5.0])
        adj = adjacency_matrix(positions, radii, LinkRule.BIDIRECTIONAL)
        assert adj.shape == (3, 3)
        assert not adj.diagonal().any()

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        positions = rng.uniform(0, 50, size=(20, 2))
        radii = rng.uniform(1, 10, size=20)
        for rule in LinkRule:
            adj = adjacency_matrix(positions, radii, rule)
            assert np.array_equal(adj, adj.T)

    def test_bidirectional_uses_min(self):
        positions = np.array([[0.0, 0.0], [4.0, 0.0]])
        # min(3, 10) = 3 < 4: no link
        adj = adjacency_matrix(
            positions, np.array([3.0, 10.0]), LinkRule.BIDIRECTIONAL
        )
        assert not adj[0, 1]

    def test_unidirectional_uses_max(self):
        positions = np.array([[0.0, 0.0], [4.0, 0.0]])
        adj = adjacency_matrix(
            positions, np.array([3.0, 10.0]), LinkRule.UNIDIRECTIONAL
        )
        assert adj[0, 1]

    def test_overlap_uses_sum(self):
        positions = np.array([[0.0, 0.0], [4.0, 0.0]])
        adj = adjacency_matrix(positions, np.array([2.0, 2.0]), LinkRule.OVERLAP)
        assert adj[0, 1]
        adj = adjacency_matrix(positions, np.array([1.9, 2.0]), LinkRule.OVERLAP)
        assert not adj[0, 1]

    def test_boundary_distance_links(self):
        positions = np.array([[0.0, 0.0], [5.0, 0.0]])
        adj = adjacency_matrix(
            positions, np.array([5.0, 5.0]), LinkRule.BIDIRECTIONAL
        )
        assert adj[0, 1]

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            adjacency_matrix(
                np.zeros((3, 3)), np.ones(3), LinkRule.OVERLAP
            )
        with pytest.raises(ValueError):
            adjacency_matrix(
                np.zeros((3, 2)), np.ones(4), LinkRule.OVERLAP
            )


class TestLinkEdges:
    def test_upper_triangular(self):
        adj = np.array(
            [
                [False, True, False],
                [True, False, True],
                [False, True, False],
            ]
        )
        assert link_edges(adj) == [(0, 1), (1, 2)]

    def test_empty(self):
        assert link_edges(np.zeros((3, 3), dtype=bool)) == []


class TestRouterNetwork:
    def test_chain_connectivity(self):
        # Radii 4: consecutive routers 4 apart link under BIDIRECTIONAL.
        problem, placement = line_problem([4.0, 4.0, 4.0, 4.0])
        network = RouterNetwork.build(problem, placement)
        assert network.giant_size == 4
        assert network.n_links == 3
        assert network.components.n_components == 1

    def test_broken_chain(self):
        # The weak middle router (radius 2) cannot reach its neighbors.
        problem, placement = line_problem([4.0, 2.0, 4.0, 4.0])
        network = RouterNetwork.build(problem, placement)
        assert network.giant_size == 2  # routers 2-3
        assert network.components.n_components == 3

    def test_isolated_routers(self):
        # Routers 2 and 3 (4 apart, radii 4) link; router 0's only close
        # neighbor is the weak router 1, and min(4, 1) < 4, so both are
        # isolated.
        problem, placement = line_problem([4.0, 1.0, 4.0, 4.0])
        network = RouterNetwork.build(problem, placement)
        assert network.isolated_routers() == [0, 1]

    def test_degrees_and_mean(self):
        problem, placement = line_problem([4.0, 4.0, 4.0])
        network = RouterNetwork.build(problem, placement)
        assert list(network.degrees()) == [1, 2, 1]
        assert network.mean_degree() == pytest.approx(4 / 3)

    def test_giant_mask(self):
        problem, placement = line_problem([4.0, 4.0, 1.0])
        network = RouterNetwork.build(problem, placement)
        assert list(network.giant_mask()) == [True, True, False]

    def test_placement_size_mismatch_rejected(self):
        problem, placement = line_problem([4.0, 4.0])
        bad = Placement.from_cells(problem.grid, [Point(0, 0)])
        with pytest.raises(ValueError, match="fleet"):
            RouterNetwork.build(problem, bad)

    def test_matches_networkx_on_random_instance(self, tiny_problem, rng):
        placement = Placement.random(
            tiny_problem.grid, tiny_problem.n_routers, rng
        )
        network = RouterNetwork.build(tiny_problem, placement)
        graph = nx.Graph()
        graph.add_nodes_from(range(tiny_problem.n_routers))
        graph.add_edges_from(link_edges(network.adjacency))
        assert network.giant_size == max(
            len(c) for c in nx.connected_components(graph)
        )
        assert network.n_links == graph.number_of_edges()
