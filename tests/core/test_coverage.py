"""Unit tests for user coverage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clients import ClientSet
from repro.core.coverage import coverage_mask, coverage_matrix, covered_clients
from repro.core.geometry import Point
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance
from repro.core.radio import CoverageRule, LinkRule
from repro.core.routers import RouterFleet
from repro.core.solution import Placement


@pytest.fixture
def coverage_problem():
    """Two far-apart router pairs; clients sprinkled around them.

    Routers 0,1 (radius 4) sit together near the origin and link; routers
    2,3 (radius 3 and 2) sit together near (30, 0) and link.  The pairs
    are far apart, so the giant component is {0, 1}.
    """
    grid = GridArea(40, 10)
    fleet = RouterFleet.from_radii([4.0, 4.0, 3.0, 2.0])
    clients = ClientSet.from_points(
        [
            Point(1, 1),    # near routers 0/1 -> covered by giant
            Point(3, 0),    # near routers 0/1 -> covered by giant
            Point(31, 1),   # near routers 2/3 -> only covered by non-giant
            Point(20, 5),   # in the gap -> covered by nobody
        ],
        grid=grid,
    )
    problem = ProblemInstance(
        grid=grid,
        fleet=fleet,
        clients=clients,
        link_rule=LinkRule.BIDIRECTIONAL,
        coverage_rule=CoverageRule.GIANT_ONLY,
    )
    placement = Placement.from_cells(
        grid, [Point(0, 0), Point(2, 0), Point(30, 0), Point(32, 0)]
    )
    return problem, placement


class TestCoverageMatrix:
    def test_known_geometry(self):
        clients = np.array([[0.0, 0.0], [5.0, 0.0]])
        routers = np.array([[0.0, 0.0], [10.0, 0.0]])
        radii = np.array([3.0, 6.0])
        matrix = coverage_matrix(clients, routers, radii)
        assert matrix.shape == (2, 2)
        assert matrix[0, 0]        # distance 0 <= 3
        assert not matrix[0, 1]    # distance 10 > 6
        assert not matrix[1, 0]    # distance 5 > 3
        assert matrix[1, 1]        # distance 5 <= 6

    def test_boundary_inclusive(self):
        matrix = coverage_matrix(
            np.array([[3.0, 0.0]]), np.array([[0.0, 0.0]]), np.array([3.0])
        )
        assert matrix[0, 0]

    def test_empty_clients(self):
        matrix = coverage_matrix(
            np.zeros((0, 2)), np.array([[0.0, 0.0]]), np.array([1.0])
        )
        assert matrix.shape == (0, 1)


class TestCoverageMask:
    def test_giant_only_vs_any(self, coverage_problem):
        problem, placement = coverage_problem
        all_mask = coverage_mask(problem, placement)
        assert list(all_mask) == [True, True, True, False]

        giant = np.array([True, True, False, False])
        giant_covered = coverage_mask(problem, placement, router_mask=giant)
        assert list(giant_covered) == [True, True, False, False]

    def test_empty_router_mask(self, coverage_problem):
        problem, placement = coverage_problem
        mask = coverage_mask(
            problem, placement, router_mask=np.zeros(4, dtype=bool)
        )
        assert not mask.any()

    def test_bad_mask_shape_rejected(self, coverage_problem):
        problem, placement = coverage_problem
        with pytest.raises(ValueError):
            coverage_mask(problem, placement, router_mask=np.ones(3, dtype=bool))


class TestCoveredClients:
    def test_giant_only_rule(self, coverage_problem):
        problem, placement = coverage_problem
        # Giant = routers 0,1 -> clients 0,1 covered.
        assert covered_clients(problem, placement) == 2

    def test_any_router_rule(self, coverage_problem):
        problem, placement = coverage_problem
        problem_any = problem.with_coverage_rule(CoverageRule.ANY_ROUTER)
        assert covered_clients(problem_any, placement) == 3

    def test_explicit_giant_mask_short_circuits(self, coverage_problem):
        problem, placement = coverage_problem
        mask = np.array([False, False, True, True])
        assert covered_clients(problem, placement, giant_mask=mask) == 1

    def test_no_clients(self):
        grid = GridArea(8, 8)
        problem = ProblemInstance(
            grid=grid,
            fleet=RouterFleet.from_radii([2.0]),
            clients=ClientSet.from_points([]),
        )
        placement = Placement.from_cells(grid, [Point(0, 0)])
        assert covered_clients(problem, placement) == 0
