"""Unit and property tests for geometry primitives."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.geometry import (
    Point,
    Rect,
    chebyshev,
    euclidean,
    euclidean_squared,
    manhattan,
)

coords = st.integers(min_value=-200, max_value=200)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_unpacking_and_fields(self):
        p = Point(3, 7)
        x, y = p
        assert (x, y) == (3, 7)
        assert p.x == 3 and p.y == 7

    def test_translated(self):
        assert Point(1, 2).translated(3, -5) == Point(4, -3)

    def test_distance_to_matches_euclidean(self):
        a, b = Point(0, 0), Point(3, 4)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_hashable_and_set_member(self):
        assert len({Point(1, 1), Point(1, 1), Point(2, 1)}) == 2

    def test_lexicographic_ordering(self):
        assert Point(1, 5) < Point(2, 0)
        assert Point(1, 2) < Point(1, 3)


class TestDistances:
    def test_euclidean_known_value(self):
        assert euclidean(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_euclidean_squared_exact_integer(self):
        assert euclidean_squared(Point(-1, -1), Point(2, 3)) == 25

    def test_manhattan_known_value(self):
        assert manhattan(Point(0, 0), Point(3, -4)) == 7

    def test_chebyshev_known_value(self):
        assert chebyshev(Point(0, 0), Point(3, -4)) == 4

    @given(points, points)
    def test_symmetry(self, a, b):
        assert euclidean(a, b) == euclidean(b, a)
        assert manhattan(a, b) == manhattan(b, a)
        assert chebyshev(a, b) == chebyshev(b, a)

    @given(points, points)
    def test_identity_of_indiscernibles(self, a, b):
        if a == b:
            assert euclidean(a, b) == 0
        else:
            assert euclidean(a, b) > 0

    @given(points, points, points)
    def test_euclidean_triangle_inequality(self, a, b, c):
        assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-9

    @given(points, points)
    def test_metric_ordering(self, a, b):
        # chebyshev <= euclidean <= manhattan for integer grids
        assert chebyshev(a, b) <= euclidean(a, b) + 1e-9
        assert euclidean(a, b) <= manhattan(a, b) + 1e-9

    @given(points, points)
    def test_squared_consistency(self, a, b):
        assert euclidean(a, b) == pytest.approx(
            math.sqrt(euclidean_squared(a, b))
        )


class TestRect:
    def test_basic_properties(self):
        r = Rect(2, 3, 4, 5)
        assert r.x1 == 6
        assert r.y1 == 8
        assert r.area == 20
        assert r.center == Point(4, 5)

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, -1, 3)
        with pytest.raises(ValueError):
            Rect(0, 0, 3, -1)

    def test_empty_rect_allowed(self):
        assert Rect(5, 5, 0, 0).area == 0

    def test_contains_half_open(self):
        r = Rect(0, 0, 3, 3)
        assert r.contains(Point(0, 0))
        assert r.contains(Point(2, 2))
        assert not r.contains(Point(3, 0))
        assert not r.contains(Point(0, 3))
        assert not r.contains(Point(-1, 0))

    def test_cells_enumerates_area(self):
        r = Rect(1, 1, 2, 3)
        cells = list(r.cells())
        assert len(cells) == r.area
        assert len(set(cells)) == r.area
        assert all(r.contains(cell) for cell in cells)
        # Row-major: first cell is the origin corner.
        assert cells[0] == Point(1, 1)

    def test_intersection_overlap(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(2, 2, 4, 4)
        inter = a.intersection(b)
        assert inter == Rect(2, 2, 2, 2)
        assert a.intersects(b)

    def test_intersection_disjoint_is_empty(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(5, 5, 2, 2)
        assert a.intersection(b).area == 0
        assert not a.intersects(b)

    def test_intersection_touching_edges_is_empty(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(2, 0, 2, 2)
        assert not a.intersects(b)

    def test_clamped_inside_unchanged(self):
        r = Rect(0, 0, 10, 10)
        assert r.clamped(Point(5, 5)) == Point(5, 5)

    def test_clamped_outside_projects_to_edge(self):
        r = Rect(2, 2, 4, 4)
        assert r.clamped(Point(-5, 3)) == Point(2, 3)
        assert r.clamped(Point(100, 100)) == Point(5, 5)

    def test_clamped_empty_rect_raises(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 0).clamped(Point(1, 1))

    @given(
        st.builds(
            Rect,
            st.integers(-50, 50),
            st.integers(-50, 50),
            st.integers(0, 50),
            st.integers(0, 50),
        ),
        st.builds(
            Rect,
            st.integers(-50, 50),
            st.integers(-50, 50),
            st.integers(0, 50),
            st.integers(0, 50),
        ),
    )
    def test_intersection_commutative_and_contained(self, a, b):
        inter_ab = a.intersection(b)
        inter_ba = b.intersection(a)
        assert inter_ab.area == inter_ba.area
        for cell in inter_ab.cells():
            assert a.contains(cell) and b.contains(cell)

    @given(
        st.builds(
            Rect,
            st.integers(-20, 20),
            st.integers(-20, 20),
            st.integers(1, 20),
            st.integers(1, 20),
        ),
        points,
    )
    def test_clamped_always_inside(self, rect, point):
        assert rect.contains(rect.clamped(point))
