"""Parity tests for the stacked (multi-chain) evaluation entry points.

The stacked engine and its incremental (delta) companion must produce
row-for-row exactly what the scalar reference evaluator computes — the
lockstep search layer relies on it for bit-identical portfolio results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import StackedEngine, measure_stack
from repro.core.engine.components import (
    labels_from_edge_stack,
    labels_from_edges,
)
from repro.core.engine.stacked import StackedDeltaEngine
from repro.core.evaluation import Evaluator
from repro.core.fitness import (
    LexicographicFitness,
    NetworkMetrics,
    WeightedSumFitness,
)
from repro.core.radio import CoverageRule
from repro.core.solution import Placement
from repro.instances.catalog import tiny_spec


@pytest.fixture(scope="module")
def problem():
    return tiny_spec(seed=3).generate()


def random_placements(problem, count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Placement.random(problem.grid, problem.n_routers, rng)
        for _ in range(count)
    ]


def assert_rows_match(measurement, references):
    for index, reference in enumerate(references):
        assert measurement.metrics(index) == reference.metrics
        assert float(measurement.fitness[index]) == reference.fitness
        assert np.array_equal(
            measurement.giant_masks[index], reference.giant_mask
        )


class TestStackedEngine:
    def test_measure_placements_matches_scalar(self, problem):
        placements = random_placements(problem, 7)
        references = [Evaluator(problem).evaluate(p) for p in placements]
        measurement = StackedEngine(problem).measure_placements(placements)
        assert_rows_match(measurement, references)

    def test_measure_positions_matches_placements(self, problem):
        placements = random_placements(problem, 5, seed=4)
        engine = StackedEngine(problem)
        by_placement = engine.measure_placements(placements)
        stack = np.stack([p.positions_array() for p in placements])
        by_positions = engine.measure_positions(stack)
        assert np.array_equal(by_positions.fitness, by_placement.fitness)
        assert np.array_equal(
            by_positions.giant_sizes, by_placement.giant_sizes
        )

    def test_chunking_preserves_rows(self, problem):
        placements = random_placements(problem, 9, seed=5)
        whole = StackedEngine(problem).measure_placements(placements)
        chunked = StackedEngine(problem, max_chunk=4).measure_placements(
            placements
        )
        assert np.array_equal(whole.fitness, chunked.fitness)
        assert np.array_equal(whole.covered_clients, chunked.covered_clients)

    def test_materialized_evaluation_is_full(self, problem):
        placements = random_placements(problem, 3, seed=6)
        measurement = StackedEngine(problem).measure_placements(placements)
        reference = Evaluator(problem).evaluate(placements[1])
        evaluation = measurement.evaluation(1, placements[1])
        assert evaluation.placement is placements[1]
        assert evaluation.metrics == reference.metrics
        assert evaluation.fitness == reference.fitness

    def test_array_row_requires_placement(self, problem):
        measurement = StackedEngine(problem).measure_placements(
            random_placements(problem, 2, seed=7)
        )
        with pytest.raises(ValueError):
            measurement.evaluation(0)

    def test_empty_set(self, problem):
        measurement = StackedEngine(problem).measure_placements([])
        assert len(measurement) == 0

    def test_sparse_engine_rows_match(self, problem):
        placements = random_placements(problem, 4, seed=8)
        references = [Evaluator(problem).evaluate(p) for p in placements]
        engine = StackedEngine(problem, engine="sparse")
        measurement = engine.measure_placements(placements)
        assert engine.engine == "sparse"
        assert_rows_match(measurement, references)
        # Sparse rows come with stored evaluations.
        assert measurement.evaluation(2).metrics == references[2].metrics

    def test_sparse_rejects_position_stack(self, problem):
        engine = StackedEngine(problem, engine="sparse")
        with pytest.raises(ValueError):
            engine.measure_positions(np.zeros((1, problem.n_routers, 2)))


class TestScoreRows:
    def test_weighted_sum_matches_scalar(self, problem):
        placements = random_placements(problem, 6, seed=9)
        fitness = WeightedSumFitness(0.6, 0.4)
        measurement = measure_stack(
            problem, fitness, np.stack([p.positions_array() for p in placements])
        )
        for index in range(len(measurement)):
            assert float(measurement.fitness[index]) == fitness.score(
                measurement.metrics(index)
            )

    def test_lexicographic_matches_scalar(self, problem):
        placements = random_placements(problem, 6, seed=10)
        fitness = LexicographicFitness(epsilon=0.25)
        measurement = measure_stack(
            problem, fitness, np.stack([p.positions_array() for p in placements])
        )
        for index in range(len(measurement)):
            assert float(measurement.fitness[index]) == fitness.score(
                measurement.metrics(index)
            )

    def test_custom_fitness_falls_back_to_scalar_loop(self, problem):
        # A fitness that only defines score() must still work through
        # the base-class row loop.
        from repro.core.fitness import FitnessFunction

        class Minimal(FitnessFunction):
            def score(self, metrics: NetworkMetrics) -> float:
                return float(metrics.n_links + metrics.giant_size)

        fitness = Minimal()
        placements = random_placements(problem, 4, seed=11)
        measurement = measure_stack(
            problem, fitness, np.stack([p.positions_array() for p in placements])
        )
        for index in range(len(measurement)):
            assert float(measurement.fitness[index]) == fitness.score(
                measurement.metrics(index)
            )


class TestLabelsFromEdgeStack:
    @pytest.mark.parametrize("n_nodes,n_edges", [(64, 120), (8192, 24000)])
    def test_matches_propagation_kernel(self, n_nodes, n_edges):
        rng = np.random.default_rng(12)
        rows = rng.integers(0, n_nodes, n_edges)
        cols = rng.integers(0, n_nodes, n_edges)
        keep = rows != cols
        rows, cols = rows[keep], cols[keep]
        assert np.array_equal(
            labels_from_edge_stack(n_nodes, rows, cols),
            labels_from_edges(n_nodes, rows, cols),
        )

    def test_empty_edges(self):
        labels = labels_from_edge_stack(5, np.zeros(0, int), np.zeros(0, int))
        assert labels.tolist() == [0, 1, 2, 3, 4]


def delta_parity_case(problem, moves_per_chain, seed):
    """Run measure_phase and compare against full stacked measurement."""
    rng = np.random.default_rng(seed)
    incumbents = random_placements(problem, len(moves_per_chain), seed=seed)
    engine = StackedDeltaEngine(problem)
    for chain, incumbent in enumerate(incumbents):
        engine.reset_chain(chain, incumbent)
    items = []
    placements = []
    for chain, moves in enumerate(moves_per_chain):
        incumbent = incumbents[chain]
        for movers, new_cells in moves:
            items.append(
                (
                    chain,
                    tuple(movers),
                    tuple((float(x), float(y)) for x, y in new_cells),
                )
            )
            cells = list(incumbent.cells)
            for router, cell in zip(movers, new_cells):
                cells[router] = type(cells[0])(int(cell[0]), int(cell[1]))
            placements.append(Placement.from_cells(incumbent.grid, cells))
    measurement = engine.measure_phase(items)
    reference = measure_stack(
        problem,
        engine.fitness_function,
        np.stack([p.positions_array() for p in placements]),
    )
    assert np.array_equal(measurement.fitness, reference.fitness)
    assert np.array_equal(measurement.giant_sizes, reference.giant_sizes)
    assert np.array_equal(
        measurement.covered_clients, reference.covered_clients
    )
    assert np.array_equal(measurement.n_links, reference.n_links)
    assert np.array_equal(measurement.n_components, reference.n_components)
    assert np.array_equal(measurement.mean_degrees, reference.mean_degrees)
    assert np.array_equal(measurement.giant_masks, reference.giant_masks)


class TestStackedDeltaEngine:
    def _relocation_moves(self, problem, incumbent, rng, count):
        moves = []
        for _ in range(count):
            router = int(rng.integers(0, len(incumbent)))
            cell = problem.grid.random_free_cell(incumbent.occupied, rng)
            moves.append(((router,), (tuple(cell),)))
        return moves

    def test_relocations_match_full_measurement(self, problem):
        rng = np.random.default_rng(21)
        incumbents = random_placements(problem, 3, seed=21)
        moves = [
            self._relocation_moves(problem, incumbent, rng, 5)
            for incumbent in incumbents
        ]
        delta_parity_case(problem, moves, seed=21)

    def test_swaps_match_full_measurement(self, problem):
        rng = np.random.default_rng(22)
        incumbents = random_placements(problem, 2, seed=22)
        moves = []
        for incumbent in incumbents:
            chain_moves = []
            for _ in range(4):
                a = int(rng.integers(0, len(incumbent)))
                b = int(rng.integers(0, len(incumbent)))
                if a == b:
                    b = (a + 1) % len(incumbent)
                chain_moves.append(
                    (
                        (a, b),
                        (tuple(incumbent[b]), tuple(incumbent[a])),
                    )
                )
            moves.append(chain_moves)
        delta_parity_case(problem, moves, seed=22)

    def test_noop_candidate_matches_incumbent(self, problem):
        moves = [[((), ())], [((), ())]]
        delta_parity_case(problem, moves, seed=23)

    def test_any_router_rule(self):
        spec = tiny_spec(seed=5)
        problem = spec.generate().with_coverage_rule(CoverageRule.ANY_ROUTER)
        rng = np.random.default_rng(24)
        incumbent = Placement.random(problem.grid, problem.n_routers, rng)
        engine = StackedDeltaEngine(problem)
        engine.reset_chain(0, incumbent)
        router = 0
        cell = problem.grid.random_free_cell(incumbent.occupied, rng)
        items = [(0, (router,), ((float(cell.x), float(cell.y)),))]
        measurement = engine.measure_phase(items)
        candidate = incumbent.with_move(router, cell)
        reference = Evaluator(problem).evaluate(candidate)
        assert float(measurement.fitness[0]) == reference.fitness
        assert int(measurement.covered_clients[0]) == reference.covered_clients

    def test_commit_is_incremental_rebuild(self, problem):
        rng = np.random.default_rng(25)
        incumbent = Placement.random(problem.grid, problem.n_routers, rng)
        engine = StackedDeltaEngine(problem)
        engine.reset_chain(0, incumbent)
        moved = incumbent.with_move(
            2, problem.grid.random_free_cell(incumbent.occupied, rng)
        )
        engine.commit_chain(0, moved)
        fresh = StackedDeltaEngine(problem)
        fresh.reset_chain(0, moved)
        committed = engine._caches[0]
        rebuilt = fresh._caches[0]
        assert np.array_equal(committed.adjacency, rebuilt.adjacency)
        assert np.array_equal(committed.coverage, rebuilt.coverage)
        assert np.array_equal(committed.edge_rows, rebuilt.edge_rows)
        assert np.array_equal(committed.edge_cols, rebuilt.edge_cols)
        assert np.array_equal(committed.positions, rebuilt.positions)

    def test_items_must_be_chain_grouped(self, problem):
        incumbents = random_placements(problem, 2, seed=26)
        engine = StackedDeltaEngine(problem)
        for chain, incumbent in enumerate(incumbents):
            engine.reset_chain(chain, incumbent)
        interleaved = [
            (0, (), ()),
            (1, (), ()),
            (0, (), ()),
        ]
        with pytest.raises(ValueError):
            engine.measure_phase(interleaved)

    def test_empty_phase(self, problem):
        engine = StackedDeltaEngine(problem)
        assert len(engine.measure_phase([])) == 0
