"""Incumbent-cache handoff: reuse never changes results, only cost."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.engine.delta import DeltaEvaluator
from repro.core.engine.handoff import IncumbentCache
from repro.core.evaluation import Evaluator
from repro.core.solution import Placement
from repro.scenario import ClientDrift, RadioDegradation


def _assert_same_evaluation(a, b):
    assert a.fitness == b.fitness
    assert a.metrics == b.metrics
    assert np.array_equal(a.giant_mask, b.giant_mask)


@pytest.fixture
def placement(tiny_problem, rng):
    return Placement.random(tiny_problem.grid, tiny_problem.n_routers, rng)


@pytest.mark.parametrize("engine", ["dense", "sparse"])
class TestExportReset:
    def test_roundtrip_identical(self, tiny_problem, placement, engine):
        donor = DeltaEvaluator(Evaluator(tiny_problem, engine=engine), engine=engine)
        baseline = donor.reset(placement)
        cache = donor.export_cache()
        assert cache.layout == engine
        receiver = DeltaEvaluator(
            Evaluator(tiny_problem, engine=engine), engine=engine
        )
        seeded = receiver.reset(placement, cache=cache)
        _assert_same_evaluation(baseline, seeded)

    def test_cache_survives_donor_moves(self, tiny_problem, placement, engine, rng):
        """Exported arrays are copies; the donor moving on cannot corrupt them."""
        from repro.neighborhood.moves import RelocateMove

        donor = DeltaEvaluator(Evaluator(tiny_problem, engine=engine), engine=engine)
        baseline = donor.reset(placement)
        cache = donor.export_cache()
        # Advance the donor incumbent a few times.
        incumbent = placement
        for _ in range(4):
            free = tiny_problem.grid.random_free_cell(incumbent.occupied, rng)
            move = RelocateMove(router_id=0, target=free)
            donor.commit(donor.propose(move))
            incumbent = move.apply(incumbent)
        receiver = DeltaEvaluator(
            Evaluator(tiny_problem, engine=engine), engine=engine
        )
        _assert_same_evaluation(baseline, receiver.reset(placement, cache=cache))

    def test_drifted_clients_reuse_network_only(
        self, tiny_problem, placement, engine
    ):
        """Client drift keeps the cached adjacency valid; results identical."""
        donor = DeltaEvaluator(Evaluator(tiny_problem, engine=engine), engine=engine)
        donor.reset(placement)
        cache = donor.export_cache()
        drifted = ClientDrift(sigma=3.0).apply(
            tiny_problem, np.random.default_rng(7)
        ).problem
        cold = DeltaEvaluator(
            Evaluator(drifted, engine=engine), engine=engine
        ).reset(placement)
        seeded = DeltaEvaluator(
            Evaluator(drifted, engine=engine), engine=engine
        ).reset(placement, cache=cache)
        _assert_same_evaluation(cold, seeded)

    def test_degraded_radii_invalidate_cache(self, tiny_problem, placement, engine):
        """Radio decay invalidates both pieces — the rebuild must happen."""
        donor = DeltaEvaluator(Evaluator(tiny_problem, engine=engine), engine=engine)
        donor.reset(placement)
        cache = donor.export_cache()
        degraded = RadioDegradation(factor=0.6).apply(
            tiny_problem, np.random.default_rng(7)
        ).problem
        cold = DeltaEvaluator(
            Evaluator(degraded, engine=engine), engine=engine
        ).reset(placement)
        seeded = DeltaEvaluator(
            Evaluator(degraded, engine=engine), engine=engine
        ).reset(placement, cache=cache)
        _assert_same_evaluation(cold, seeded)

    def test_different_placement_ignores_cache(
        self, tiny_problem, placement, engine
    ):
        donor = DeltaEvaluator(Evaluator(tiny_problem, engine=engine), engine=engine)
        donor.reset(placement)
        cache = donor.export_cache()
        other = Placement.random(
            tiny_problem.grid, tiny_problem.n_routers, np.random.default_rng(99)
        )
        cold = DeltaEvaluator(
            Evaluator(tiny_problem, engine=engine), engine=engine
        ).reset(other)
        seeded = DeltaEvaluator(
            Evaluator(tiny_problem, engine=engine), engine=engine
        ).reset(other, cache=cache)
        _assert_same_evaluation(cold, seeded)

    def test_cross_layout_cache_ignored(self, tiny_problem, placement, engine):
        """A dense cache offered to a sparse reset (and vice versa) is inert."""
        other_engine = "sparse" if engine == "dense" else "dense"
        donor = DeltaEvaluator(
            Evaluator(tiny_problem, engine=other_engine), engine=other_engine
        )
        donor.reset(placement)
        cache = donor.export_cache()
        cold = DeltaEvaluator(
            Evaluator(tiny_problem, engine=engine), engine=engine
        ).reset(placement)
        seeded = DeltaEvaluator(
            Evaluator(tiny_problem, engine=engine), engine=engine
        ).reset(placement, cache=cache)
        _assert_same_evaluation(cold, seeded)


class TestValidity:
    def test_export_requires_incumbent(self, tiny_problem):
        engine = DeltaEvaluator(Evaluator(tiny_problem))
        with pytest.raises(ValueError, match="no incumbent"):
            engine.export_cache()

    def test_unknown_layout_rejected(self, tiny_problem, placement):
        donor = DeltaEvaluator(Evaluator(tiny_problem))
        donor.reset(placement)
        cache = donor.export_cache()
        with pytest.raises(ValueError, match="unknown cache layout"):
            replace(cache, layout="hologram")

    def test_network_validity_tracks_link_rule(self, tiny_problem, placement):
        donor = DeltaEvaluator(Evaluator(tiny_problem))
        donor.reset(placement)
        cache = donor.export_cache()
        positions = placement.positions_array()
        radii = tiny_problem.fleet.radii
        assert cache.network_valid_for(positions, radii, tiny_problem.link_rule)
        from repro.core.radio import LinkRule

        other_rule = (
            LinkRule.UNIDIRECTIONAL
            if tiny_problem.link_rule is not LinkRule.UNIDIRECTIONAL
            else LinkRule.BIDIRECTIONAL
        )
        assert not cache.network_valid_for(positions, radii, other_rule)

    def test_coverage_validity_tracks_clients(self, tiny_problem, placement):
        donor = DeltaEvaluator(Evaluator(tiny_problem))
        donor.reset(placement)
        cache = donor.export_cache()
        positions = placement.positions_array()
        radii = tiny_problem.fleet.radii
        clients = tiny_problem.clients.positions
        assert cache.coverage_valid_for(positions, radii, clients)
        assert not cache.coverage_valid_for(positions, radii, clients + 1.0)
