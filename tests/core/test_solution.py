"""Unit and property tests for placements."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Point, Rect
from repro.core.grid import GridArea
from repro.core.solution import Placement


def make_placement(*cells: tuple[int, int], size: int = 16) -> Placement:
    return Placement.from_cells(GridArea(size, size), [Point(*c) for c in cells])


class TestInvariants:
    def test_valid_placement(self):
        p = make_placement((0, 0), (1, 1), (2, 2))
        assert len(p) == 3
        assert p[1] == Point(1, 1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Placement.from_cells(GridArea(4, 4), [])

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            make_placement((0, 0), (16, 0))

    def test_collision_rejected(self):
        with pytest.raises(ValueError, match="same cell"):
            make_placement((3, 3), (3, 3))

    def test_occupied_set(self):
        p = make_placement((0, 0), (5, 5))
        assert p.occupied == {Point(0, 0), Point(5, 5)}

    def test_is_free(self):
        p = make_placement((0, 0))
        assert p.is_free(Point(1, 1))
        assert not p.is_free(Point(0, 0))
        assert not p.is_free(Point(99, 99))


class TestRandom:
    def test_random_valid(self, rng):
        grid = GridArea(10, 10)
        p = Placement.random(grid, 30, rng)
        assert len(p) == 30
        assert len(p.occupied) == 30

    def test_random_full_grid(self, rng):
        grid = GridArea(5, 5)
        p = Placement.random(grid, 25, rng)
        assert p.occupied == frozenset(grid.cells())

    def test_random_too_many(self, rng):
        with pytest.raises(ValueError):
            Placement.random(GridArea(3, 3), 10, rng)


class TestQueries:
    def test_positions_array(self):
        p = make_placement((1, 2), (3, 4))
        assert np.array_equal(p.positions_array(), [[1.0, 2.0], [3.0, 4.0]])

    def test_routers_in(self):
        p = make_placement((0, 0), (5, 5), (1, 1))
        assert p.routers_in(Rect(0, 0, 2, 2)) == [0, 2]
        assert p.routers_in(Rect(10, 10, 2, 2)) == []

    def test_as_mapping(self):
        p = make_placement((0, 0), (5, 5))
        assert p.as_mapping() == {0: Point(0, 0), 1: Point(5, 5)}


class TestMoves:
    def test_with_move(self):
        p = make_placement((0, 0), (5, 5))
        q = p.with_move(0, Point(2, 2))
        assert q[0] == Point(2, 2)
        assert q[1] == Point(5, 5)
        # Original untouched.
        assert p[0] == Point(0, 0)

    def test_with_move_to_same_cell_is_noop(self):
        p = make_placement((0, 0), (5, 5))
        assert p.with_move(0, Point(0, 0)) is p

    def test_with_move_occupied_rejected(self):
        p = make_placement((0, 0), (5, 5))
        with pytest.raises(ValueError, match="occupied"):
            p.with_move(0, Point(5, 5))

    def test_with_move_out_of_bounds_rejected(self):
        p = make_placement((0, 0))
        with pytest.raises(ValueError):
            p.with_move(0, Point(99, 0))

    def test_with_move_bad_router_rejected(self):
        p = make_placement((0, 0))
        with pytest.raises(ValueError, match="out of range"):
            p.with_move(5, Point(1, 1))

    def test_with_swap(self):
        p = make_placement((0, 0), (5, 5))
        q = p.with_swap(0, 1)
        assert q[0] == Point(5, 5)
        assert q[1] == Point(0, 0)
        assert p[0] == Point(0, 0)

    def test_with_swap_same_router_is_noop(self):
        p = make_placement((0, 0), (5, 5))
        assert p.with_swap(1, 1) is p

    def test_with_swap_bad_router_rejected(self):
        p = make_placement((0, 0), (1, 1))
        with pytest.raises(ValueError):
            p.with_swap(0, 7)


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------

placement_strategy = st.integers(0, 10_000).map(
    lambda seed: Placement.random(GridArea(12, 12), 10, np.random.default_rng(seed))
)


@settings(max_examples=50)
@given(placement_strategy, st.integers(0, 9), st.integers(0, 9))
def test_swap_preserves_occupied_cells(placement, a, b):
    swapped = placement.with_swap(a, b)
    assert swapped.occupied == placement.occupied
    assert len(swapped) == len(placement)


@settings(max_examples=50)
@given(placement_strategy, st.integers(0, 9), st.integers(0, 11), st.integers(0, 11))
def test_move_changes_exactly_one_router(placement, router, x, y):
    target = Point(x, y)
    if target in placement.occupied:
        return
    moved = placement.with_move(router, target)
    differences = [
        i for i in range(len(placement)) if moved[i] != placement[i]
    ]
    assert differences == [router]
    assert moved[router] == target


@settings(max_examples=50)
@given(placement_strategy, st.integers(0, 9), st.integers(0, 9))
def test_swap_is_involution(placement, a, b):
    assert placement.with_swap(a, b).with_swap(a, b).cells == placement.cells
