"""Unit and property tests for the deployment grid."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Point, Rect
from repro.core.grid import GridArea


class TestConstruction:
    def test_valid(self):
        g = GridArea(4, 8)
        assert g.n_cells == 32
        assert g.bounds == Rect(0, 0, 4, 8)
        assert g.center == Point(2, 4)

    @pytest.mark.parametrize("width,height", [(0, 5), (5, 0), (-1, 5), (5, -2)])
    def test_invalid_dimensions(self, width, height):
        with pytest.raises(ValueError):
            GridArea(width, height)


class TestQueries:
    def test_contains(self, grid):
        assert grid.contains(Point(0, 0))
        assert grid.contains(Point(31, 31))
        assert not grid.contains(Point(32, 0))
        assert not grid.contains(Point(0, -1))

    def test_require_inside_raises(self, grid):
        with pytest.raises(ValueError, match="outside"):
            grid.require_inside(Point(40, 2))

    def test_cells_count(self):
        g = GridArea(3, 2)
        cells = list(g.cells())
        assert len(cells) == 6
        assert len(set(cells)) == 6

    def test_cell_index_roundtrip(self, grid):
        for p in [Point(0, 0), Point(31, 31), Point(5, 17)]:
            assert grid.cell_at(grid.cell_index(p)) == p

    def test_cell_index_row_major(self):
        g = GridArea(10, 10)
        assert g.cell_index(Point(3, 2)) == 23

    def test_cell_at_out_of_range(self, grid):
        with pytest.raises(ValueError):
            grid.cell_at(-1)
        with pytest.raises(ValueError):
            grid.cell_at(grid.n_cells)

    @given(st.integers(1, 40), st.integers(1, 40), st.data())
    def test_cell_index_bijection(self, width, height, data):
        g = GridArea(width, height)
        index = data.draw(st.integers(0, g.n_cells - 1))
        assert g.cell_index(g.cell_at(index)) == index


class TestAspect:
    def test_square_is_near_square(self):
        assert GridArea(128, 128).is_near_square()

    def test_ten_percent_tolerance(self):
        assert GridArea(100, 90).is_near_square()
        assert not GridArea(100, 89).is_near_square()

    def test_custom_tolerance(self):
        assert GridArea(100, 50).is_near_square(tolerance=0.5)


class TestSubAreas:
    def test_central_rect_centered(self):
        g = GridArea(128, 128)
        r = g.central_rect(32, 32)
        assert r == Rect(48, 48, 32, 32)

    def test_central_rect_full_grid(self, grid):
        assert grid.central_rect(32, 32) == grid.bounds

    def test_central_rect_too_large(self, grid):
        with pytest.raises(ValueError):
            grid.central_rect(33, 10)

    def test_corner_rects_positions(self):
        g = GridArea(100, 80)
        bl, br, tl, tr = g.corner_rects(10, 8)
        assert bl == Rect(0, 0, 10, 8)
        assert br == Rect(90, 0, 10, 8)
        assert tl == Rect(0, 72, 10, 8)
        assert tr == Rect(90, 72, 10, 8)

    def test_corner_rects_too_large(self, grid):
        with pytest.raises(ValueError):
            grid.corner_rects(40, 4)

    def test_window_positions_count(self):
        g = GridArea(10, 8)
        windows = list(g.window_positions(3, 2))
        assert len(windows) == (10 - 3 + 1) * (8 - 2 + 1)
        assert all(w.width == 3 and w.height == 2 for w in windows)
        # Every window lies inside the grid.
        assert all(
            w.x0 >= 0 and w.y0 >= 0 and w.x1 <= 10 and w.y1 <= 8 for w in windows
        )

    def test_window_positions_oversized(self, grid):
        with pytest.raises(ValueError):
            list(grid.window_positions(33, 2))


class TestSampling:
    def test_random_cell_inside(self, grid, rng):
        for _ in range(100):
            assert grid.contains(grid.random_cell(rng))

    def test_random_cell_in_rect(self, grid, rng):
        rect = Rect(4, 4, 3, 3)
        for _ in range(50):
            assert rect.contains(grid.random_cell_in(rect, rng))

    def test_random_cell_in_empty_region_raises(self, grid, rng):
        with pytest.raises(ValueError):
            grid.random_cell_in(Rect(100, 100, 5, 5), rng)

    def test_random_free_cell_avoids_occupied(self, rng):
        g = GridArea(3, 3)
        occupied = [Point(x, y) for x in range(3) for y in range(3)]
        occupied.remove(Point(1, 1))
        for _ in range(10):
            assert g.random_free_cell(occupied, rng) == Point(1, 1)

    def test_random_free_cell_no_free_raises(self, rng):
        g = GridArea(2, 2)
        occupied = list(g.cells())
        with pytest.raises(ValueError):
            g.random_free_cell(occupied, rng)

    def test_random_free_cell_within(self, grid, rng):
        rect = Rect(0, 0, 2, 2)
        occupied = [Point(0, 0), Point(1, 0), Point(0, 1)]
        assert grid.random_free_cell(occupied, rng, within=rect) == Point(1, 1)

    def test_sample_distinct_cells(self, grid, rng):
        cells = grid.sample_distinct_cells(100, rng)
        assert len(cells) == 100
        assert len(set(cells)) == 100
        assert all(grid.contains(c) for c in cells)

    def test_sample_distinct_cells_whole_grid(self, rng):
        g = GridArea(4, 4)
        cells = g.sample_distinct_cells(16, rng)
        assert set(cells) == set(g.cells())

    def test_sample_distinct_too_many(self, rng):
        g = GridArea(4, 4)
        with pytest.raises(ValueError, match="free cells"):
            g.sample_distinct_cells(17, rng)

    def test_sample_distinct_respects_occupied(self, rng):
        g = GridArea(4, 1)
        occupied = [Point(0, 0), Point(1, 0)]
        cells = g.sample_distinct_cells(2, rng, occupied=occupied)
        assert set(cells) == {Point(2, 0), Point(3, 0)}

    @settings(max_examples=25)
    @given(
        st.integers(2, 20),
        st.integers(2, 20),
        st.integers(1, 10),
        st.integers(0, 10_000),
    )
    def test_sample_distinct_property(self, width, height, count, seed):
        g = GridArea(width, height)
        count = min(count, g.n_cells)
        cells = g.sample_distinct_cells(count, np.random.default_rng(seed))
        assert len(set(cells)) == count
        assert all(g.contains(c) for c in cells)
