"""Unit and property tests for union-find and components.

The component engine is cross-validated against ``networkx`` on random
graphs — our implementation must agree exactly on the partition.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.connectivity import (
    UnionFind,
    connected_components,
    giant_component_mask,
)


class TestUnionFind:
    def test_initial_state(self):
        dsu = UnionFind(5)
        assert len(dsu) == 5
        assert dsu.n_components == 5
        assert all(dsu.find(i) == i for i in range(5))

    def test_union_reduces_components(self):
        dsu = UnionFind(4)
        assert dsu.union(0, 1)
        assert dsu.n_components == 3
        assert dsu.connected(0, 1)
        assert not dsu.connected(0, 2)

    def test_union_idempotent(self):
        dsu = UnionFind(3)
        assert dsu.union(0, 1)
        assert not dsu.union(0, 1)
        assert not dsu.union(1, 0)
        assert dsu.n_components == 2

    def test_transitivity(self):
        dsu = UnionFind(4)
        dsu.union(0, 1)
        dsu.union(1, 2)
        assert dsu.connected(0, 2)
        assert dsu.component_size(0) == 3
        assert dsu.component_size(3) == 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_empty(self):
        dsu = UnionFind(0)
        assert dsu.n_components == 0
        assert dsu.labels().shape == (0,)

    def test_labels_consistent(self):
        dsu = UnionFind(6)
        dsu.union(0, 3)
        dsu.union(3, 5)
        labels = dsu.labels()
        assert labels[0] == labels[3] == labels[5]
        assert labels[1] != labels[0]

    @settings(max_examples=30)
    @given(
        st.integers(1, 30),
        st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=60),
    )
    def test_component_count_matches_label_count(self, n, pairs):
        dsu = UnionFind(n)
        for a, b in pairs:
            dsu.union(a % n, b % n)
        assert dsu.n_components == len(set(dsu.find(i) for i in range(n)))

    @settings(max_examples=30)
    @given(
        st.integers(1, 30),
        st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=60),
    )
    def test_sizes_sum_to_n(self, n, pairs):
        dsu = UnionFind(n)
        for a, b in pairs:
            dsu.union(a % n, b % n)
        roots = set(dsu.find(i) for i in range(n))
        assert sum(dsu.component_size(r) for r in roots) == n


class TestConnectedComponents:
    def test_no_edges(self):
        cs = connected_components(4, [])
        assert cs.n_components == 4
        assert cs.giant_size == 1

    def test_single_component(self):
        cs = connected_components(4, [(0, 1), (1, 2), (2, 3)])
        assert cs.n_components == 1
        assert cs.giant_size == 4
        assert cs.giant_mask().all()

    def test_two_components(self):
        cs = connected_components(5, [(0, 1), (1, 2), (3, 4)])
        assert cs.n_components == 2
        assert cs.giant_size == 3
        mask = cs.giant_mask()
        assert list(mask) == [True, True, True, False, False]

    def test_tie_breaking_deterministic(self):
        # Two components of equal size: the one with the smaller label wins.
        cs = connected_components(4, [(0, 1), (2, 3)])
        assert cs.giant_size == 2
        first = cs.giant_mask()
        again = connected_components(4, [(0, 1), (2, 3)]).giant_mask()
        assert np.array_equal(first, again)

    def test_members(self):
        cs = connected_components(5, [(0, 2), (2, 4)])
        label = cs.component_of(0)
        assert cs.members(label) == [0, 2, 4]

    def test_empty_graph(self):
        cs = connected_components(0, [])
        assert cs.n_components == 0
        assert cs.giant_size == 0
        assert cs.giant_mask().shape == (0,)
        with pytest.raises(ValueError):
            cs.giant_label()

    def test_edge_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            connected_components(3, [(0, 3)])
        with pytest.raises(ValueError):
            connected_components(3, [(-1, 0)])

    def test_negative_node_count_rejected(self):
        with pytest.raises(ValueError):
            connected_components(-2, [])

    def test_self_loop_harmless(self):
        cs = connected_components(2, [(0, 0)])
        assert cs.n_components == 2


class TestAgainstNetworkx:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 40), st.integers(0, 10_000))
    def test_matches_networkx_partition(self, n, seed):
        rng = np.random.default_rng(seed)
        n_edges = int(rng.integers(0, max(1, 2 * n)))
        edges = [
            (int(rng.integers(0, n)), int(rng.integers(0, n)))
            for _ in range(n_edges)
        ]
        edges = [(a, b) for a, b in edges if a != b]

        ours = connected_components(n, edges)
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(edges)
        theirs = list(nx.connected_components(graph))

        assert ours.n_components == len(theirs)
        assert ours.giant_size == max(len(c) for c in theirs)
        # Same partition: every networkx component maps to one label.
        for component in theirs:
            labels = {ours.component_of(v) for v in component}
            assert len(labels) == 1

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 30), st.integers(0, 10_000))
    def test_giant_mask_is_a_real_component(self, n, seed):
        rng = np.random.default_rng(seed)
        edges = [
            (int(rng.integers(0, n)), int(rng.integers(0, n)))
            for _ in range(n)
        ]
        edges = [(a, b) for a, b in edges if a != b]
        mask = giant_component_mask(n, edges)
        members = set(np.flatnonzero(mask))
        # No edge crosses the component boundary.
        for a, b in edges:
            assert (a in members) == (b in members) or not (
                a in members or b in members
            )
        assert len(members) == connected_components(n, edges).giant_size
