"""Unit and property tests for the density engine.

The prefix-sum window counts are cross-validated against a brute-force
count over random point sets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.density import DensityMap
from repro.core.geometry import Point, Rect
from repro.core.grid import GridArea


def brute_force_count(points, rect: Rect) -> int:
    return sum(1 for x, y in points if rect.contains(Point(int(x), int(y))))


class TestBuild:
    def test_rejects_bad_window(self, grid):
        with pytest.raises(ValueError):
            DensityMap.build(grid, [], 0, 4)
        with pytest.raises(ValueError):
            DensityMap.build(grid, [], 4, 40)

    def test_rejects_out_of_grid_points(self, grid):
        with pytest.raises(ValueError):
            DensityMap.build(grid, [Point(99, 0)], 4, 4)

    def test_window_counts_shape(self, grid):
        dm = DensityMap.build(grid, [], 4, 6)
        assert dm.window_counts.shape == (32 - 6 + 1, 32 - 4 + 1)

    def test_total_points(self, grid):
        dm = DensityMap.build(grid, [Point(0, 0), Point(0, 0), Point(5, 5)], 4, 4)
        assert dm.total_points == 3


class TestCounts:
    def test_single_point(self):
        grid = GridArea(8, 8)
        dm = DensityMap.build(grid, [Point(3, 3)], 2, 2)
        # Windows containing (3,3): anchors x0 in {2,3}, y0 in {2,3}.
        expected = np.zeros((7, 7), dtype=int)
        expected[2:4, 2:4] = 1
        assert np.array_equal(dm.window_counts, expected)

    def test_count_in_matches_brute_force(self, rng):
        grid = GridArea(20, 20)
        points = [
            Point(int(rng.integers(0, 20)), int(rng.integers(0, 20)))
            for _ in range(50)
        ]
        dm = DensityMap.build(grid, points, 5, 5)
        for rect in [Rect(0, 0, 5, 5), Rect(3, 7, 6, 2), Rect(15, 15, 5, 5)]:
            assert dm.count_in(rect) == brute_force_count(points, rect)

    def test_count_in_clips_to_grid(self):
        grid = GridArea(8, 8)
        dm = DensityMap.build(grid, [Point(7, 7)], 2, 2)
        assert dm.count_in(Rect(6, 6, 10, 10)) == 1
        assert dm.count_in(Rect(100, 100, 5, 5)) == 0

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(4, 24),
        st.integers(4, 24),
        st.integers(1, 6),
        st.integers(1, 6),
        st.integers(0, 10_000),
    )
    def test_all_window_counts_match_brute_force(
        self, width, height, ww, wh, seed
    ):
        ww = min(ww, width)
        wh = min(wh, height)
        grid = GridArea(width, height)
        rng = np.random.default_rng(seed)
        n_points = int(rng.integers(0, 30))
        points = [
            Point(int(rng.integers(0, width)), int(rng.integers(0, height)))
            for _ in range(n_points)
        ]
        dm = DensityMap.build(grid, points, ww, wh)
        counts = dm.window_counts
        for y0 in range(counts.shape[0]):
            for x0 in range(counts.shape[1]):
                assert counts[y0, x0] == brute_force_count(
                    points, Rect(x0, y0, ww, wh)
                )


class TestExtremes:
    def test_densest_window_contains_cluster(self):
        grid = GridArea(16, 16)
        cluster = [Point(10, 10), Point(11, 10), Point(10, 11), Point(11, 11)]
        dm = DensityMap.build(grid, cluster + [Point(0, 0)], 4, 4)
        dense = dm.densest_window()
        assert dm.count_in(dense) == 4

    def test_sparsest_window_is_empty(self):
        grid = GridArea(16, 16)
        dm = DensityMap.build(grid, [Point(0, 0)], 4, 4)
        assert dm.count_in(dm.sparsest_window()) == 0

    def test_window_at_validates(self, grid):
        dm = DensityMap.build(grid, [], 4, 4)
        assert dm.window_at(0, 0) == Rect(0, 0, 4, 4)
        with pytest.raises(ValueError):
            dm.window_at(29, 0)
        with pytest.raises(ValueError):
            dm.window_at(-1, 0)


class TestRankedWindows:
    def test_non_overlapping(self):
        grid = GridArea(32, 32)
        rng = np.random.default_rng(1)
        points = [
            Point(int(rng.integers(0, 32)), int(rng.integers(0, 32)))
            for _ in range(60)
        ]
        dm = DensityMap.build(grid, points, 6, 6)
        windows = dm.ranked_windows(5, densest=True)
        for i, a in enumerate(windows):
            for b in windows[i + 1 :]:
                assert not a.intersects(b)

    def test_descending_counts(self):
        grid = GridArea(32, 32)
        rng = np.random.default_rng(2)
        points = [
            Point(int(rng.integers(0, 32)), int(rng.integers(0, 32)))
            for _ in range(60)
        ]
        dm = DensityMap.build(grid, points, 6, 6)
        windows = dm.ranked_windows(4, densest=True)
        counts = [dm.count_in(w) for w in windows]
        assert counts == sorted(counts, reverse=True)

    def test_sparsest_first_when_ascending(self):
        grid = GridArea(16, 16)
        dm = DensityMap.build(grid, [Point(1, 1)] * 5, 4, 4)
        windows = dm.ranked_windows(3, densest=False)
        assert dm.count_in(windows[0]) == 0

    def test_count_validation(self, grid):
        dm = DensityMap.build(grid, [], 4, 4)
        with pytest.raises(ValueError):
            dm.ranked_windows(0)

    def test_overlapping_allowed_when_disabled(self):
        grid = GridArea(16, 16)
        cluster = [Point(8, 8)] * 10
        dm = DensityMap.build(grid, cluster, 4, 4)
        windows = dm.ranked_windows(4, densest=True, min_overlap_free=False)
        # Without suppression the top windows all cover the cluster.
        assert all(dm.count_in(w) == 10 for w in windows)

    def test_fewer_windows_than_requested(self):
        grid = GridArea(8, 8)
        dm = DensityMap.build(grid, [], 4, 4)
        # Only 4 non-overlapping 4x4 windows exist in an 8x8 grid.
        windows = dm.ranked_windows(100, densest=True)
        assert len(windows) == 4


class TestSampledExtreme:
    def test_sampled_window_from_pool(self, rng):
        grid = GridArea(16, 16)
        dm = DensityMap.build(grid, [Point(8, 8)] * 3, 4, 4)
        pool = dm.ranked_windows(4, densest=True)
        for _ in range(20):
            window = dm.sampled_extreme_window(rng, densest=True, pool=4)
            assert window in pool

    def test_pool_of_one_is_deterministic(self, rng):
        grid = GridArea(16, 16)
        dm = DensityMap.build(grid, [Point(8, 8)] * 3, 4, 4)
        assert dm.sampled_extreme_window(rng, pool=1) == dm.densest_window()
