"""Unit and property tests for fitness functions."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.fitness import (
    LexicographicFitness,
    NetworkMetrics,
    WeightedSumFitness,
)


def metrics(
    giant=10, routers=64, covered=50, clients=192, components=5, links=20, degree=1.0
) -> NetworkMetrics:
    return NetworkMetrics(
        giant_size=giant,
        n_routers=routers,
        covered_clients=covered,
        n_clients=clients,
        n_components=components,
        n_links=links,
        mean_degree=degree,
    )


class TestNetworkMetrics:
    def test_ratios(self):
        m = metrics(giant=32, routers=64, covered=96, clients=192)
        assert m.connectivity_ratio == 0.5
        assert m.coverage_ratio == 0.5

    def test_full_connectivity_flag(self):
        assert metrics(giant=64, routers=64).is_fully_connected
        assert not metrics(giant=63, routers=64).is_fully_connected

    def test_no_clients_coverage_is_vacuous(self):
        m = metrics(covered=0, clients=0)
        assert m.coverage_ratio == 1.0

    def test_giant_bounds_validated(self):
        with pytest.raises(ValueError):
            metrics(giant=65, routers=64)
        with pytest.raises(ValueError):
            metrics(giant=-1)

    def test_coverage_bounds_validated(self):
        with pytest.raises(ValueError):
            metrics(covered=193, clients=192)


class TestWeightedSum:
    def test_default_weights_match_paper_priority(self):
        f = WeightedSumFitness()
        assert f.connectivity_weight > f.coverage_weight

    def test_known_value(self):
        f = WeightedSumFitness(0.7, 0.3)
        m = metrics(giant=32, routers=64, covered=96, clients=192)
        assert f.score(m) == pytest.approx(0.7 * 0.5 + 0.3 * 0.5)

    def test_perfect_solution_scores_weight_sum(self):
        f = WeightedSumFitness(0.7, 0.3)
        m = metrics(giant=64, routers=64, covered=192, clients=192)
        assert f.score(m) == pytest.approx(1.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedSumFitness(-0.1, 0.5)

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedSumFitness(0.0, 0.0)

    def test_single_objective_allowed(self):
        f = WeightedSumFitness(1.0, 0.0)
        better = metrics(giant=20, covered=0)
        worse = metrics(giant=10, covered=192)
        assert f.better(better, worse)

    def test_better_is_strict(self):
        f = WeightedSumFitness()
        m = metrics()
        assert not f.better(m, m)

    @given(
        st.integers(0, 64),
        st.integers(0, 64),
        st.integers(0, 192),
    )
    def test_monotone_in_giant(self, g1, g2, covered):
        f = WeightedSumFitness()
        m1 = metrics(giant=g1, covered=covered)
        m2 = metrics(giant=g2, covered=covered)
        if g1 > g2:
            assert f.score(m1) > f.score(m2)

    @given(st.integers(0, 192), st.integers(0, 192), st.integers(0, 64))
    def test_monotone_in_coverage(self, c1, c2, giant):
        f = WeightedSumFitness()
        m1 = metrics(covered=c1, giant=giant)
        m2 = metrics(covered=c2, giant=giant)
        if c1 > c2:
            assert f.score(m1) > f.score(m2)


class TestLexicographic:
    def test_connectivity_strictly_dominates(self):
        f = LexicographicFitness()
        more_giant = metrics(giant=11, covered=0)
        more_coverage = metrics(giant=10, covered=192)
        assert f.better(more_giant, more_coverage)

    def test_coverage_breaks_ties(self):
        f = LexicographicFitness()
        a = metrics(giant=10, covered=100)
        b = metrics(giant=10, covered=99)
        assert f.better(a, b)

    def test_epsilon_bounds(self):
        with pytest.raises(ValueError):
            LexicographicFitness(epsilon=0.0)
        with pytest.raises(ValueError):
            LexicographicFitness(epsilon=1.0)

    @given(
        st.integers(0, 64),
        st.integers(0, 192),
        st.integers(0, 64),
        st.integers(0, 192),
    )
    def test_lexicographic_order_property(self, g1, c1, g2, c2):
        f = LexicographicFitness()
        m1 = metrics(giant=g1, covered=c1)
        m2 = metrics(giant=g2, covered=c2)
        if g1 > g2:
            assert f.score(m1) > f.score(m2)
        elif g1 == g2 and c1 > c2:
            assert f.score(m1) > f.score(m2)
        elif (g1, c1) == (g2, c2):
            assert f.score(m1) == f.score(m2)
