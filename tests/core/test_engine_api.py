"""Parity coverage for the public engine API surface.

The ``repro.lint`` RL008 rule demands that every public entry point of
``repro.core.engine`` is referenced by a module under ``tests/core/``.
This module closes the gaps the first lint run found: the
:class:`StackedMeasurement` container, the compiled tier's
:class:`CompiledEngine` class and its :func:`build_error` /
:func:`has_openmp` diagnostics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import CompiledEngine, measure_stack
from repro.core.engine.batch import StackedMeasurement
from repro.core.engine.compiled import build_error, has_openmp, is_available
from repro.core.evaluation import Evaluator
from repro.core.fitness import WeightedSumFitness
from repro.core.solution import Placement
from repro.instances.catalog import tiny_spec

needs_kernels = pytest.mark.skipif(
    not is_available(),
    reason="compiled kernels not available (no C toolchain?)",
)


@pytest.fixture
def problem():
    return tiny_spec(seed=3).generate()


def position_stack(problem, count, seed=0):
    rng = np.random.default_rng(seed)
    placements = [
        Placement.random(problem.grid, problem.n_routers, rng)
        for _ in range(count)
    ]
    return placements, np.stack([p.positions_array() for p in placements])


class TestStackedMeasurement:
    def test_measure_stack_returns_stacked_measurement(self, problem):
        placements, stack = position_stack(problem, 4)
        measurement = measure_stack(problem, WeightedSumFitness(), stack)
        assert isinstance(measurement, StackedMeasurement)
        assert len(measurement) == 4
        assert measurement.fitness.shape == (4,)

    def test_rows_materialize_to_scalar_evaluations(self, problem):
        placements, stack = position_stack(problem, 3, seed=7)
        measurement = measure_stack(problem, WeightedSumFitness(), stack)
        evaluator = Evaluator(problem, engine="dense")
        for index, placement in enumerate(placements):
            reference = evaluator.evaluate(placement)
            row = measurement.evaluation(index, placement)
            assert row.metrics == reference.metrics
            assert row.fitness == reference.fitness
            assert np.array_equal(row.giant_mask, reference.giant_mask)


class TestCompiledDiagnostics:
    def test_build_error_contract(self):
        # Lazy build: before/after any availability probe the cached
        # error is either absent or the full compiler text.
        error = build_error()
        assert error is None or isinstance(error, str)
        if is_available():
            assert build_error() is None

    @needs_kernels
    def test_has_openmp_reports_a_bool(self):
        assert isinstance(has_openmp(), bool)


@needs_kernels
class TestCompiledEngineClass:
    def test_stack_rows_match_numpy_measurement(self, problem):
        placements, stack = position_stack(problem, 5, seed=11)
        fitness = WeightedSumFitness()
        compiled_rows = CompiledEngine(problem, fitness).measure_stack(stack)
        numpy_rows = measure_stack(problem, fitness, stack)
        assert np.array_equal(compiled_rows.fitness, numpy_rows.fitness)
        assert np.array_equal(compiled_rows.giant_sizes, numpy_rows.giant_sizes)
        assert np.array_equal(
            compiled_rows.covered_clients, numpy_rows.covered_clients
        )
        assert np.array_equal(compiled_rows.giant_masks, numpy_rows.giant_masks)

    def test_scalar_evaluate_matches_dense(self, problem):
        placements, _ = position_stack(problem, 1, seed=13)
        engine = CompiledEngine(problem)
        reference = Evaluator(problem, engine="dense").evaluate(placements[0])
        result = engine.evaluate(placements[0])
        assert result.metrics == reference.metrics
        assert result.fitness == reference.fitness
