"""Parity and availability tests for the compiled (C-kernel) tier.

Two halves with different availability requirements:

* The parity classes need the kernels built (system C toolchain) and
  skip cleanly without one — tier 1 must pass on a box with no
  compiler.
* The fallback class runs everywhere: it forces the tier unavailable
  through the ``REPRO_COMPILED`` gate and asserts the documented
  contract — ``engine="compiled"`` fails loudly, ``engine="auto"``
  falls back silently with identical results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import compiled
from repro.core.engine.components import labels_from_edges
from repro.core.engine.delta import DeltaEvaluator
from repro.core.engine.dispatch import ENGINE_TIERS, resolve_engine
from repro.core.engine.sparse import link_hits
from repro.core.engine.stacked import StackedDeltaEngine, StackedEngine
from repro.core.evaluation import Evaluator
from repro.core.problem import ProblemInstance
from repro.core.radio import CoverageRule, LinkRule, RadioProfile
from repro.core.solution import Placement
from repro.instances.catalog import city_spec, tiny_spec

needs_kernels = pytest.mark.skipif(
    not compiled.is_available(),
    reason="compiled kernels not available (no C toolchain?)",
)

LINK_RULES = [LinkRule.OVERLAP, LinkRule.BIDIRECTIONAL, LinkRule.UNIDIRECTIONAL]
COVERAGE_RULES = [CoverageRule.GIANT_ONLY, CoverageRule.ANY_ROUTER]


def tiny_problem(link_rule=LinkRule.BIDIRECTIONAL, coverage_rule=CoverageRule.GIANT_ONLY):
    problem = tiny_spec(seed=3).generate()
    return problem.with_link_rule(link_rule).with_coverage_rule(coverage_rule)


def random_placements(problem, count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Placement.random(problem.grid, problem.n_routers, rng)
        for _ in range(count)
    ]


def assert_same_evaluation(a, b):
    assert a.metrics == b.metrics
    assert a.fitness == b.fitness
    assert np.array_equal(a.giant_mask, b.giant_mask)


@needs_kernels
class TestScalarParity:
    @pytest.mark.parametrize("link_rule", LINK_RULES)
    @pytest.mark.parametrize("coverage_rule", COVERAGE_RULES)
    def test_bit_identical_to_dense(self, link_rule, coverage_rule):
        problem = tiny_problem(link_rule, coverage_rule)
        reference = Evaluator(problem, engine="dense")
        under_test = Evaluator(problem, engine="compiled")
        assert under_test.engine == "compiled"
        for placement in random_placements(problem, 5, seed=11):
            assert_same_evaluation(
                under_test.evaluate(placement), reference.evaluate(placement)
            )

    def test_sparse_form_matches_both_numpy_engines(self):
        # City scale forces the bin-pair kernel form.
        problem = city_spec(1024, 4_000, seed=3).generate()
        placement = random_placements(problem, 1, seed=12)[0]
        compiled_eval = Evaluator(problem, engine="compiled").evaluate(placement)
        for numpy_engine in ("dense", "sparse"):
            reference = Evaluator(problem, engine=numpy_engine).evaluate(placement)
            assert_same_evaluation(compiled_eval, reference)

    def test_evaluate_many_counts_and_matches(self):
        problem = tiny_problem()
        placements = random_placements(problem, 6, seed=13)
        reference = Evaluator(problem, engine="dense")
        under_test = Evaluator(problem, engine="compiled")
        batch = under_test.evaluate_many(placements)
        assert under_test.n_evaluations == len(placements)
        for evaluation, placement in zip(batch, placements):
            assert_same_evaluation(evaluation, reference.evaluate(placement))

    def test_zero_clients(self):
        rng = np.random.default_rng(5)
        problem = ProblemInstance.build(
            32, 32, 8, [], RadioProfile(3.0, 6.0), rng
        )
        placement = random_placements(problem, 1, seed=14)[0]
        compiled_eval = Evaluator(problem, engine="compiled").evaluate(placement)
        reference = Evaluator(problem, engine="dense").evaluate(placement)
        assert compiled_eval.covered_clients == 0
        assert_same_evaluation(compiled_eval, reference)


@needs_kernels
class TestStackedParity:
    def test_measure_positions_matches_numpy_stack(self):
        problem = tiny_problem()
        placements = random_placements(problem, 9, seed=15)
        stack = np.stack([p.positions_array() for p in placements])
        reference = StackedEngine(problem, engine="dense").measure_positions(stack)
        engine = StackedEngine(problem, engine="compiled")
        assert engine.engine == "compiled" and engine.layout == "dense"
        assert engine.accepts_positions
        measurement = engine.measure_positions(stack)
        for name in (
            "giant_sizes", "covered_clients", "n_components",
            "n_links", "mean_degrees", "fitness", "giant_masks",
        ):
            assert np.array_equal(
                getattr(measurement, name), getattr(reference, name)
            ), name

    def test_city_stack_takes_positions_lane(self):
        problem = city_spec(1024, 4_000, seed=3).generate()
        engine = StackedEngine(problem, engine="compiled")
        assert engine.layout == "sparse" and engine.accepts_positions
        placements = random_placements(problem, 2, seed=16)
        reference = StackedEngine(problem, engine="sparse").measure_placements(
            placements
        )
        measurement = engine.measure_placements(placements)
        assert np.array_equal(measurement.fitness, reference.fitness)
        assert np.array_equal(measurement.giant_masks, reference.giant_masks)

    def test_empty_stack(self):
        problem = tiny_problem()
        engine = StackedEngine(problem, engine="compiled")
        assert len(engine.measure_placements([])) == 0


@needs_kernels
class TestDeltaParity:
    class _Move:
        def __init__(self, placement):
            self._placement = placement

        def apply(self, incumbent):
            return self._placement

    @pytest.mark.parametrize("coverage_rule", COVERAGE_RULES)
    def test_propose_commit_loop_matches_dense(self, coverage_rule):
        problem = tiny_problem(coverage_rule=coverage_rule)
        rng = np.random.default_rng(17)
        start = Placement.random(problem.grid, problem.n_routers, rng)
        under_test = DeltaEvaluator(Evaluator(problem), engine="compiled")
        reference = DeltaEvaluator(Evaluator(problem), engine="dense")
        assert under_test.engine == "compiled"
        assert under_test.layout == "dense"
        assert_same_evaluation(under_test.reset(start), reference.reset(start))
        incumbent = start
        for _ in range(20):
            router = int(rng.integers(0, len(incumbent)))
            cell = problem.grid.random_free_cell(incumbent.occupied, rng)
            candidate = incumbent.with_move(router, cell)
            ours = under_test.propose(self._Move(candidate))
            theirs = reference.propose(self._Move(candidate))
            assert_same_evaluation(ours, theirs)
            if rng.random() < 0.5:
                under_test.commit(ours)
                reference.commit(theirs)
                incumbent = candidate

    def test_sparse_layout_propose_matches(self):
        problem = city_spec(1024, 4_000, seed=3).generate()
        rng = np.random.default_rng(18)
        start = Placement.random(problem.grid, problem.n_routers, rng)
        under_test = DeltaEvaluator(Evaluator(problem), engine="compiled")
        reference = DeltaEvaluator(Evaluator(problem), engine="sparse")
        assert under_test.layout == "sparse"
        assert_same_evaluation(under_test.reset(start), reference.reset(start))
        for _ in range(5):
            router = int(rng.integers(0, len(start)))
            cell = problem.grid.random_free_cell(start.occupied, rng)
            candidate = start.with_move(router, cell)
            assert_same_evaluation(
                under_test.propose(self._Move(candidate)),
                reference.propose(self._Move(candidate)),
            )

    def test_export_cache_reports_layout(self):
        problem = tiny_problem()
        delta = DeltaEvaluator(Evaluator(problem), engine="compiled")
        delta.reset(random_placements(problem, 1, seed=19)[0])
        assert delta.export_cache().layout == "dense"


@needs_kernels
class TestStackedDeltaParity:
    def test_phase_matches_dense_engine(self):
        problem = tiny_problem()
        rng = np.random.default_rng(20)
        incumbent = Placement.random(problem.grid, problem.n_routers, rng)
        under_test = StackedDeltaEngine(problem, engine="compiled")
        reference = StackedDeltaEngine(problem, engine="dense")
        under_test.reset_chain(0, incumbent)
        reference.reset_chain(0, incumbent)
        items = [(0, (), ())]
        for _ in range(4):
            router = int(rng.integers(0, len(incumbent)))
            cell = problem.grid.random_free_cell(incumbent.occupied, rng)
            items.append((0, (router,), ((float(cell.x), float(cell.y)),)))
        a = int(rng.integers(0, len(incumbent)))
        b = (a + 1) % len(incumbent)
        items.append(
            (0, (a, b), (tuple(map(float, incumbent[b])),
                         tuple(map(float, incumbent[a]))))
        )
        ours = under_test.measure_phase(items)
        theirs = reference.measure_phase(items)
        for name in (
            "giant_sizes", "covered_clients", "n_components",
            "n_links", "mean_degrees", "fitness", "giant_masks",
        ):
            assert np.array_equal(getattr(ours, name), getattr(theirs, name)), name

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            StackedDeltaEngine(tiny_problem(), engine="turbo")


@needs_kernels
class TestKernelUnits:
    def test_label_components_matches_numpy(self):
        rng = np.random.default_rng(21)
        for n_nodes, n_edges in ((1, 0), (64, 120), (8192, 24_000)):
            rows = rng.integers(0, n_nodes, n_edges)
            cols = rng.integers(0, n_nodes, n_edges)
            keep = rows != cols
            rows, cols = rows[keep], cols[keep]
            assert np.array_equal(
                compiled.label_components(n_nodes, rows, cols),
                labels_from_edges(n_nodes, rows, cols),
            )

    def test_label_components_validates(self):
        with pytest.raises(ValueError):
            compiled.label_components(2, np.array([0]), np.array([5]))
        with pytest.raises(ValueError):
            compiled.label_components(-1, np.zeros(0, int), np.zeros(0, int))

    @pytest.mark.parametrize("link_rule", LINK_RULES)
    def test_link_hits_matches_numpy(self, link_rule):
        rng = np.random.default_rng(22)
        positions = rng.uniform(0, 64, size=(100, 2))
        radii = rng.uniform(2, 10, size=100)
        rows = rng.integers(0, 100, 400)
        cols = rng.integers(0, 100, 400)
        ours = compiled.link_hits_compiled(positions, radii, link_rule, rows, cols)
        theirs = link_hits(positions, radii, link_rule, rows, cols)
        assert np.array_equal(ours[0], theirs[0])
        assert np.array_equal(ours[1], theirs[1])

    def test_client_csr_is_contiguous(self):
        # np.nonzero hands back strided column views; the kernels walk
        # raw int64 buffers, so the hit list must be compacted.
        coverage = np.zeros((6, 4), dtype=bool)
        coverage[1, 2] = coverage[3, 0] = coverage[3, 3] = True
        ptr, hit = compiled.client_csr(coverage)
        assert hit.flags["C_CONTIGUOUS"] and ptr.flags["C_CONTIGUOUS"]
        assert ptr.tolist() == [0, 0, 1, 1, 3, 3, 3]
        assert hit.tolist() == [2, 0, 3]

    def test_giant_covered_exchanges_mover_columns(self):
        coverage = np.array(
            [[1, 0, 0], [0, 1, 0], [1, 0, 1], [0, 0, 0]], dtype=bool
        )
        ptr, hit = compiled.client_csr(coverage)
        giant = np.array([[True, False, True]])
        # Candidate 0 moves router 0 (in the giant) to cover only the
        # last client: c0 loses its hit, c2 keeps router 2, c3 gains.
        covered = compiled.giant_covered(
            ptr, hit, 3, giant,
            np.array([0], dtype=np.intp), np.array([0], dtype=np.intp),
            np.array([[0, 0, 0, 1]], dtype=bool), coverage,
        )
        assert covered.tolist() == [2]

    def test_csr_update_column_matches_full_rebuild(self):
        rng = np.random.default_rng(37)
        coverage = rng.random((40, 12)) < 0.3
        ptr, hit = compiled.client_csr(coverage)
        for router in (0, 5, 11):
            newcol = rng.random(40) < 0.4
            patched = coverage.copy()
            patched[:, router] = newcol
            got_ptr, got_hit = compiled.csr_update_column(
                ptr, hit, router, newcol
            )
            want_ptr, want_hit = compiled.client_csr(patched)
            assert np.array_equal(got_ptr, want_ptr)
            assert np.array_equal(got_hit, want_hit)
            coverage, ptr, hit = patched, got_ptr, got_hit

    def test_csr_update_column_validates_offsets(self):
        with pytest.raises(ValueError):
            compiled.csr_update_column(
                np.zeros(3, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                0,
                np.zeros(5, dtype=bool),
            )

    def test_dense_edges_matches_nonzero(self):
        rng = np.random.default_rng(41)
        half = rng.random((30, 30)) < 0.2
        adjacency = np.triu(half, k=1)
        adjacency = adjacency | adjacency.T
        rows, cols = compiled.dense_edges(adjacency)
        ref_rows, ref_cols = np.nonzero(adjacency)
        one_way = ref_rows < ref_cols
        assert np.array_equal(rows, ref_rows[one_way])
        assert np.array_equal(cols, ref_cols[one_way])

    def test_set_num_threads_validates(self):
        with pytest.raises(ValueError):
            compiled.set_num_threads(0)


class TestForcedUnavailability:
    """The documented fallback contract, no toolchain required."""

    @pytest.fixture()
    def disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED", "0")

    def test_compiled_engine_raises_clear_error(self, disabled):
        problem = tiny_problem()
        with pytest.raises(RuntimeError, match="engine='auto'"):
            Evaluator(problem, engine="compiled")

    def test_require_names_the_gate(self, disabled):
        with pytest.raises(RuntimeError, match="REPRO_COMPILED"):
            compiled.require()

    def test_auto_falls_back_silently_with_identical_results(self, disabled):
        problem = tiny_problem()
        auto = Evaluator(problem, engine="auto")
        assert auto.engine in ("dense", "sparse")
        forced = Evaluator(problem, engine=auto.engine)
        for placement in random_placements(problem, 3, seed=23):
            assert_same_evaluation(
                auto.evaluate(placement), forced.evaluate(placement)
            )

    def test_is_available_honors_gate(self, disabled):
        assert not compiled.is_available()


class TestDispatchContract:
    def test_error_message_lists_every_tier(self):
        problem = tiny_problem()
        with pytest.raises(ValueError) as excinfo:
            resolve_engine(problem, "turbo")
        for tier in ENGINE_TIERS:
            assert repr(tier) in str(excinfo.value)

    def test_compiled_is_a_tier(self):
        assert "compiled" in ENGINE_TIERS
