"""Unit tests for mesh clients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clients import ClientSet, MeshClient
from repro.core.geometry import Point, Rect
from repro.core.grid import GridArea


class TestMeshClient:
    def test_valid(self):
        c = MeshClient(client_id=0, cell=Point(1, 2))
        assert c.cell == Point(1, 2)

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            MeshClient(client_id=-1, cell=Point(0, 0))


class TestClientSet:
    def test_from_points(self):
        cs = ClientSet.from_points([Point(1, 1), Point(2, 3)])
        assert len(cs) == 2
        assert cs[0].client_id == 0
        assert cs[1].cell == Point(2, 3)

    def test_from_points_validates_against_grid(self):
        grid = GridArea(4, 4)
        with pytest.raises(ValueError):
            ClientSet.from_points([Point(5, 0)], grid=grid)

    def test_duplicate_cells_allowed(self):
        cs = ClientSet.from_points([Point(1, 1), Point(1, 1)])
        assert len(cs) == 2

    def test_empty_set(self):
        cs = ClientSet.from_points([])
        assert len(cs) == 0
        assert cs.positions.shape == (0, 2)
        assert cs.count_in(Rect(0, 0, 10, 10)) == 0

    def test_mismatched_ids_rejected(self):
        with pytest.raises(ValueError, match="ids must equal positions"):
            ClientSet((MeshClient(5, Point(0, 0)),))

    def test_positions_array(self):
        cs = ClientSet.from_points([Point(1, 2), Point(3, 4)])
        assert np.array_equal(cs.positions, [[1.0, 2.0], [3.0, 4.0]])

    def test_positions_read_only(self):
        cs = ClientSet.from_points([Point(1, 2)])
        with pytest.raises(ValueError):
            cs.positions[0, 0] = 99.0

    def test_count_in(self):
        cs = ClientSet.from_points(
            [Point(0, 0), Point(1, 1), Point(5, 5), Point(1, 1)]
        )
        assert cs.count_in(Rect(0, 0, 2, 2)) == 3
        assert cs.count_in(Rect(5, 5, 1, 1)) == 1
        assert cs.count_in(Rect(10, 10, 2, 2)) == 0

    def test_count_in_half_open(self):
        cs = ClientSet.from_points([Point(2, 2)])
        assert cs.count_in(Rect(0, 0, 2, 2)) == 0
        assert cs.count_in(Rect(2, 2, 1, 1)) == 1

    def test_cells_preserves_duplicates_and_order(self):
        pts = [Point(3, 3), Point(1, 1), Point(3, 3)]
        cs = ClientSet.from_points(pts)
        assert cs.cells() == pts

    def test_iteration(self):
        cs = ClientSet.from_points([Point(0, 0), Point(1, 0)])
        assert [c.client_id for c in cs] == [0, 1]

    def test_from_points_coerces_tuples(self):
        cs = ClientSet.from_points([(4, 5)])
        assert cs[0].cell == Point(4, 5)
