"""Unit tests for routers and the router fleet."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.radio import RadioProfile
from repro.core.routers import MeshRouter, RouterFleet


class TestMeshRouter:
    def test_valid(self):
        r = MeshRouter(router_id=0, radius=3.5)
        assert r.router_id == 0
        assert r.radius == 3.5

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            MeshRouter(router_id=-1, radius=1.0)

    @pytest.mark.parametrize("radius", [0.0, -2.0])
    def test_non_positive_radius_rejected(self, radius):
        with pytest.raises(ValueError):
            MeshRouter(router_id=0, radius=radius)

    def test_frozen(self):
        r = MeshRouter(0, 1.0)
        with pytest.raises(AttributeError):
            r.radius = 2.0


class TestRouterFleet:
    def test_from_radii(self):
        fleet = RouterFleet.from_radii([2.0, 3.0, 4.0])
        assert len(fleet) == 3
        assert [r.router_id for r in fleet] == [0, 1, 2]
        assert np.array_equal(fleet.radii, [2.0, 3.0, 4.0])

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            RouterFleet(())

    def test_mismatched_ids_rejected(self):
        with pytest.raises(ValueError, match="ids must equal positions"):
            RouterFleet((MeshRouter(1, 2.0),))

    def test_indexing(self):
        fleet = RouterFleet.from_radii([5.0, 6.0])
        assert fleet[1].radius == 6.0

    def test_radii_read_only(self):
        fleet = RouterFleet.from_radii([1.0, 2.0])
        with pytest.raises(ValueError):
            fleet.radii[0] = 9.0

    def test_oscillating_respects_profile(self, rng):
        profile = RadioProfile(2.0, 6.0)
        fleet = RouterFleet.oscillating(50, profile, rng)
        assert len(fleet) == 50
        assert fleet.radii.min() >= 2.0
        assert fleet.radii.max() <= 6.0

    def test_oscillating_non_positive_count(self, rng):
        with pytest.raises(ValueError):
            RouterFleet.oscillating(0, RadioProfile(1, 2), rng)

    def test_by_power_descending(self):
        fleet = RouterFleet.from_radii([3.0, 5.0, 1.0, 5.0])
        ordered = fleet.by_power_descending()
        assert [r.radius for r in ordered] == [5.0, 5.0, 3.0, 1.0]
        # Ties broken by id: router 1 before router 3.
        assert [r.router_id for r in ordered][:2] == [1, 3]

    def test_strongest_weakest(self):
        fleet = RouterFleet.from_radii([3.0, 5.0, 1.0])
        assert fleet.strongest().router_id == 1
        assert fleet.weakest().router_id == 2

    def test_strongest_among(self):
        fleet = RouterFleet.from_radii([3.0, 5.0, 1.0, 4.0])
        assert fleet.strongest_among([0, 2, 3]) == 3
        assert fleet.weakest_among([0, 1, 3]) == 0

    def test_strongest_among_tie_prefers_lower_id(self):
        fleet = RouterFleet.from_radii([5.0, 5.0, 1.0])
        assert fleet.strongest_among([0, 1]) == 0
        assert fleet.weakest_among([0, 1]) == 0

    def test_among_empty_raises(self):
        fleet = RouterFleet.from_radii([1.0])
        with pytest.raises(ValueError):
            fleet.strongest_among([])
        with pytest.raises(ValueError):
            fleet.weakest_among([])

    def test_iteration_order(self):
        fleet = RouterFleet.from_radii([1.0, 2.0, 3.0])
        assert [r.router_id for r in fleet] == [0, 1, 2]
