"""Parity of the three evaluation paths.

The batched and incremental engines must reproduce the scalar
:class:`Evaluator` *bit for bit* — identical ``NetworkMetrics``,
identical fitness floats, identical giant-component masks — for random
placements under every link rule and coverage rule.  Experiments may
then batch or delta-evaluate freely without perturbing any result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import (
    BatchEvaluator,
    DeltaEvaluator,
    SparseEngine,
    evaluate_batch,
    evaluate_sparse,
)
from repro.core.evaluation import Evaluator
from repro.core.fitness import LexicographicFitness, WeightedSumFitness
from repro.core.radio import CoverageRule, LinkRule
from repro.core.solution import Placement
from repro.instances.catalog import city_spec, paper_spec, tiny_spec
from repro.neighborhood.moves import RelocateMove, SwapMove

LINK_RULES = list(LinkRule)
COVERAGE_RULES = list(CoverageRule)


def make_problem(link_rule: LinkRule, coverage_rule: CoverageRule, seed: int = 7):
    problem = tiny_spec(seed=seed).generate()
    return problem.with_link_rule(link_rule).with_coverage_rule(coverage_rule)


def random_placements(problem, rng, count: int) -> list[Placement]:
    return [
        Placement.random(problem.grid, problem.n_routers, rng)
        for _ in range(count)
    ]


def assert_same_evaluation(scalar, other):
    assert other.metrics == scalar.metrics
    assert other.fitness == scalar.fitness
    assert np.array_equal(other.giant_mask, scalar.giant_mask)
    assert other.placement is scalar.placement or (
        other.placement.cells == scalar.placement.cells
    )


@pytest.mark.parametrize("link_rule", LINK_RULES, ids=[r.value for r in LINK_RULES])
@pytest.mark.parametrize(
    "coverage_rule", COVERAGE_RULES, ids=[r.value for r in COVERAGE_RULES]
)
class TestBatchParity:
    def test_random_placements_bit_identical(self, link_rule, coverage_rule):
        problem = make_problem(link_rule, coverage_rule)
        rng = np.random.default_rng(42)
        placements = random_placements(problem, rng, 12)
        scalar = Evaluator(problem)
        batch = BatchEvaluator(problem)
        scalar_evals = [scalar.evaluate(p) for p in placements]
        batch_evals = batch.evaluate_many(placements)
        for reference, candidate in zip(scalar_evals, batch_evals):
            assert_same_evaluation(reference, candidate)

    def test_evaluate_many_adapter_matches(self, link_rule, coverage_rule):
        problem = make_problem(link_rule, coverage_rule)
        rng = np.random.default_rng(3)
        placements = random_placements(problem, rng, 5)
        evaluator = Evaluator(problem)
        via_adapter = evaluator.evaluate_many(placements)
        reference = [Evaluator(problem).evaluate(p) for p in placements]
        for ref, got in zip(reference, via_adapter):
            assert_same_evaluation(ref, got)

    def test_alternate_fitness_function(self, link_rule, coverage_rule):
        problem = make_problem(link_rule, coverage_rule)
        rng = np.random.default_rng(11)
        placements = random_placements(problem, rng, 4)
        fitness = LexicographicFitness()
        scalar = Evaluator(problem, fitness)
        batch = BatchEvaluator(problem, fitness)
        for ref, got in zip(
            [scalar.evaluate(p) for p in placements],
            batch.evaluate_many(placements),
        ):
            assert_same_evaluation(ref, got)


@pytest.mark.parametrize("link_rule", LINK_RULES, ids=[r.value for r in LINK_RULES])
@pytest.mark.parametrize(
    "coverage_rule", COVERAGE_RULES, ids=[r.value for r in COVERAGE_RULES]
)
class TestDeltaParity:
    def test_random_move_chain_bit_identical(self, link_rule, coverage_rule):
        problem = make_problem(link_rule, coverage_rule)
        rng = np.random.default_rng(99)
        delta = DeltaEvaluator(Evaluator(problem))
        current = delta.reset(
            Placement.random(problem.grid, problem.n_routers, rng)
        )
        reference = Evaluator(problem)
        assert_same_evaluation(reference.evaluate(current.placement), current)
        for step in range(40):
            if step % 5 == 4:
                a, b = rng.choice(problem.n_routers, size=2, replace=False)
                move = SwapMove(router_a=int(a), router_b=int(b))
            else:
                router = int(rng.integers(0, problem.n_routers))
                cell = problem.grid.random_free_cell(
                    current.placement.occupied, rng
                )
                move = RelocateMove(router_id=router, target=cell)
            candidate = delta.propose(move)
            expected = reference.evaluate(move.apply(current.placement))
            assert_same_evaluation(expected, candidate)
            # Accept roughly half the candidates so the caches advance
            # through commits and later proposes build on them.
            if rng.uniform() < 0.5:
                delta.commit(candidate)
                current = candidate

    def test_speculative_proposals_share_incumbent(self, link_rule, coverage_rule):
        """Tabu-style usage: many previews off one incumbent, one commit."""
        problem = make_problem(link_rule, coverage_rule)
        rng = np.random.default_rng(5)
        delta = DeltaEvaluator(Evaluator(problem))
        current = delta.reset(
            Placement.random(problem.grid, problem.n_routers, rng)
        )
        reference = Evaluator(problem)
        candidates = []
        for _ in range(8):
            router = int(rng.integers(0, problem.n_routers))
            cell = problem.grid.random_free_cell(current.placement.occupied, rng)
            move = RelocateMove(router_id=router, target=cell)
            candidate = delta.propose(move)
            assert_same_evaluation(
                reference.evaluate(move.apply(current.placement)), candidate
            )
            candidates.append(candidate)
        chosen = max(candidates, key=lambda e: e.fitness)
        delta.commit(chosen)
        assert delta.incumbent is chosen
        follow_up = delta.propose(
            RelocateMove(
                router_id=0,
                target=problem.grid.random_free_cell(
                    chosen.placement.occupied, rng
                ),
            )
        )
        expected = reference.evaluate(follow_up.placement)
        assert_same_evaluation(expected, follow_up)


@pytest.mark.parametrize("link_rule", LINK_RULES, ids=[r.value for r in LINK_RULES])
@pytest.mark.parametrize(
    "coverage_rule", COVERAGE_RULES, ids=[r.value for r in COVERAGE_RULES]
)
class TestSparseParity:
    def test_tiny_instance_bit_identical(self, link_rule, coverage_rule):
        problem = make_problem(link_rule, coverage_rule)
        rng = np.random.default_rng(21)
        placements = random_placements(problem, rng, 8)
        scalar = Evaluator(problem, engine="dense")
        sparse = SparseEngine(problem)
        for placement in placements:
            assert_same_evaluation(
                scalar.evaluate(placement), sparse.evaluate(placement)
            )

    def test_sparse_delta_move_chain_bit_identical(self, link_rule, coverage_rule):
        problem = make_problem(link_rule, coverage_rule)
        rng = np.random.default_rng(77)
        delta = DeltaEvaluator(Evaluator(problem), engine="sparse")
        current = delta.reset(
            Placement.random(problem.grid, problem.n_routers, rng)
        )
        reference = Evaluator(problem, engine="dense")
        assert_same_evaluation(reference.evaluate(current.placement), current)
        for step in range(40):
            if step % 5 == 4:
                a, b = rng.choice(problem.n_routers, size=2, replace=False)
                move = SwapMove(router_a=int(a), router_b=int(b))
            else:
                router = int(rng.integers(0, problem.n_routers))
                cell = problem.grid.random_free_cell(
                    current.placement.occupied, rng
                )
                move = RelocateMove(router_id=router, target=cell)
            candidate = delta.propose(move)
            expected = reference.evaluate(move.apply(current.placement))
            assert_same_evaluation(expected, candidate)
            if rng.uniform() < 0.5:
                delta.commit(candidate)
                current = candidate

    def test_sparse_delta_commit_of_earlier_propose(self, link_rule, coverage_rule):
        """Tabu-style: commit an evaluation that was not the last propose
        (the commit fast-path cache must miss and recompute)."""
        problem = make_problem(link_rule, coverage_rule)
        rng = np.random.default_rng(55)
        delta = DeltaEvaluator(Evaluator(problem), engine="sparse")
        current = delta.reset(
            Placement.random(problem.grid, problem.n_routers, rng)
        )
        reference = Evaluator(problem, engine="dense")
        for _ in range(4):
            candidates = []
            for _ in range(5):
                router = int(rng.integers(0, problem.n_routers))
                cell = problem.grid.random_free_cell(
                    current.placement.occupied, rng
                )
                candidates.append(
                    delta.propose(RelocateMove(router_id=router, target=cell))
                )
            chosen = candidates[0]  # deliberately not the last propose
            delta.commit(chosen)
            current = chosen
            follow = delta.propose(
                RelocateMove(
                    router_id=0,
                    target=problem.grid.random_free_cell(
                        current.placement.occupied, rng
                    ),
                )
            )
            assert_same_evaluation(reference.evaluate(follow.placement), follow)


class TestSparseParityAtScale:
    """Cross-engine parity on the paper catalog and a city-scale frame."""

    def test_paper_catalog_instances(self):
        rng = np.random.default_rng(31)
        for distribution, params in [
            ("normal", {"mean": 64.0, "std": 12.8}),
            ("exponential", {"scale": 32.0}),
            ("weibull", {"shape": 1.2}),
            ("uniform", {}),
        ]:
            problem = paper_spec(distribution, **params).generate()
            placements = random_placements(problem, rng, 3)
            scalar = Evaluator(problem, engine="dense")
            batch = BatchEvaluator(problem, engine="dense")
            references = [scalar.evaluate(p) for p in placements]
            for ref, got in zip(references, batch.evaluate_many(placements)):
                assert_same_evaluation(ref, got)
            for ref, got in zip(
                references,
                evaluate_sparse(problem, WeightedSumFitness(), placements),
            ):
                assert_same_evaluation(ref, got)

    def test_city_scale_frame(self):
        # Small enough for the dense reference, sparse enough (512x512
        # area) that binning actually prunes: the city regime in miniature.
        problem = city_spec(256, 2_000, seed=5).generate()
        rng = np.random.default_rng(13)
        placements = random_placements(problem, rng, 3)
        scalar = Evaluator(problem, engine="dense")
        sparse = BatchEvaluator(problem, engine="sparse")
        references = [scalar.evaluate(p) for p in placements]
        for ref, got in zip(references, sparse.evaluate_many(placements)):
            assert_same_evaluation(ref, got)

    def test_sparse_counter_and_archive_semantics(self):
        problem = make_problem(LinkRule.BIDIRECTIONAL, CoverageRule.GIANT_ONLY)
        rng = np.random.default_rng(17)
        placements = random_placements(problem, rng, 5)
        forced = Evaluator(problem, engine="sparse")
        assert forced.engine == "sparse"
        forced.evaluate_many(placements)
        forced.evaluate(placements[0])
        assert forced.n_evaluations == 6
        batch = BatchEvaluator(problem, engine="sparse")
        batch.evaluate_many(placements)
        assert batch.n_evaluations == 5


class TestCounterSemantics:
    def test_evaluate_many_counts_each_placement(self):
        problem = make_problem(LinkRule.BIDIRECTIONAL, CoverageRule.GIANT_ONLY)
        rng = np.random.default_rng(1)
        evaluator = Evaluator(problem)
        evaluator.evaluate_many(random_placements(problem, rng, 7))
        assert evaluator.n_evaluations == 7

    def test_batch_evaluator_counts_and_chunks(self):
        problem = make_problem(LinkRule.OVERLAP, CoverageRule.ANY_ROUTER)
        rng = np.random.default_rng(2)
        placements = random_placements(problem, rng, 9)
        batch = BatchEvaluator(problem, max_chunk=4)
        chunked = batch.evaluate_many(placements)
        assert batch.n_evaluations == 9
        unchunked = evaluate_batch(problem, WeightedSumFitness(), placements)
        for ref, got in zip(unchunked, chunked):
            assert_same_evaluation(ref, got)

    def test_delta_counts_through_wrapped_evaluator(self):
        problem = make_problem(LinkRule.UNIDIRECTIONAL, CoverageRule.GIANT_ONLY)
        rng = np.random.default_rng(3)
        evaluator = Evaluator(problem)
        delta = DeltaEvaluator(evaluator)
        current = delta.reset(
            Placement.random(problem.grid, problem.n_routers, rng)
        )
        assert evaluator.n_evaluations == 1
        cell = problem.grid.random_free_cell(current.placement.occupied, rng)
        delta.propose(RelocateMove(router_id=0, target=cell))
        assert evaluator.n_evaluations == 2

    def test_empty_batch_is_free(self):
        problem = make_problem(LinkRule.BIDIRECTIONAL, CoverageRule.GIANT_ONLY)
        evaluator = Evaluator(problem)
        assert evaluator.evaluate_many([]) == []
        assert evaluator.n_evaluations == 0


class TestIntegerFastPathBoundaries:
    """The narrow-dtype comparisons must match the float64 reference."""

    def test_negative_coordinates_match_reference(self):
        # Regression: mixed-sign coordinates once overflowed the int16
        # fast path; they must route through a wider dtype and agree
        # with the scalar formulas exactly.
        from repro.core.coverage import coverage_matrix
        from repro.core.engine import batch_adjacency, batch_coverage
        from repro.core.network import adjacency_matrix

        positions = np.array([[[-100.0, 0.0], [100.0, 0.0], [0.0, -3.0]]])
        radii = np.array([50.0, 50.0, 120.0])
        clients = np.array([[-100.0, 0.0], [90.0, 5.0]])
        for rule in LinkRule:
            batched = batch_adjacency(positions, radii, rule)
            assert np.array_equal(
                batched[0], adjacency_matrix(positions[0], radii, rule)
            )
        assert np.array_equal(
            batch_coverage(clients, positions, radii)[0],
            coverage_matrix(clients, positions[0], radii),
        )

    def test_non_integral_coordinates_match_reference(self):
        from repro.core.coverage import coverage_matrix
        from repro.core.engine import batch_adjacency, batch_coverage
        from repro.core.network import adjacency_matrix

        rng = np.random.default_rng(8)
        positions = rng.uniform(0, 60, size=(2, 9, 2))
        radii = rng.uniform(2, 9, size=9)
        clients = rng.uniform(0, 60, size=(5, 2))
        for rule in LinkRule:
            batched = batch_adjacency(positions, radii, rule)
            for index in range(2):
                assert np.array_equal(
                    batched[index],
                    adjacency_matrix(positions[index], radii, rule),
                )
        cov = batch_coverage(clients, positions, radii)
        for index in range(2):
            assert np.array_equal(
                cov[index], coverage_matrix(clients, positions[index], radii)
            )


class TestValidation:
    def test_batch_rejects_wrong_fleet_size(self):
        problem = make_problem(LinkRule.BIDIRECTIONAL, CoverageRule.GIANT_ONLY)
        rng = np.random.default_rng(4)
        short = Placement.random(problem.grid, problem.n_routers - 1, rng)
        with pytest.raises(ValueError):
            BatchEvaluator(problem).evaluate_many([short])

    def test_delta_requires_reset(self):
        problem = make_problem(LinkRule.BIDIRECTIONAL, CoverageRule.GIANT_ONLY)
        delta = DeltaEvaluator(Evaluator(problem))
        with pytest.raises(ValueError):
            delta.propose(RelocateMove(router_id=0, target=None))
        with pytest.raises(ValueError):
            delta.incumbent

    def test_batch_evaluator_rejects_bad_chunk(self):
        problem = make_problem(LinkRule.BIDIRECTIONAL, CoverageRule.GIANT_ONLY)
        with pytest.raises(ValueError):
            BatchEvaluator(problem, max_chunk=0)
