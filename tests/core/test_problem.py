"""Unit tests for problem instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clients import ClientSet
from repro.core.geometry import Point
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance
from repro.core.radio import CoverageRule, LinkRule, RadioProfile
from repro.core.routers import RouterFleet


class TestConstruction:
    def test_valid(self):
        problem = ProblemInstance(
            grid=GridArea(8, 8),
            fleet=RouterFleet.from_radii([2.0, 3.0]),
            clients=ClientSet.from_points([Point(1, 1)]),
        )
        assert problem.n_routers == 2
        assert problem.n_clients == 1
        assert problem.link_rule is LinkRule.BIDIRECTIONAL
        assert problem.coverage_rule is CoverageRule.GIANT_ONLY

    def test_too_many_routers_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            ProblemInstance(
                grid=GridArea(2, 2),
                fleet=RouterFleet.from_radii([1.0] * 5),
                clients=ClientSet.from_points([]),
            )

    def test_client_outside_grid_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            ProblemInstance(
                grid=GridArea(4, 4),
                fleet=RouterFleet.from_radii([1.0]),
                clients=ClientSet.from_points([Point(4, 0)]),
            )


class TestDerivation:
    def test_with_link_rule(self):
        problem = ProblemInstance(
            grid=GridArea(8, 8),
            fleet=RouterFleet.from_radii([2.0]),
            clients=ClientSet.from_points([]),
        )
        changed = problem.with_link_rule(LinkRule.OVERLAP)
        assert changed.link_rule is LinkRule.OVERLAP
        assert problem.link_rule is LinkRule.BIDIRECTIONAL
        assert changed.fleet is problem.fleet

    def test_with_coverage_rule(self):
        problem = ProblemInstance(
            grid=GridArea(8, 8),
            fleet=RouterFleet.from_radii([2.0]),
            clients=ClientSet.from_points([]),
        )
        changed = problem.with_coverage_rule(CoverageRule.ANY_ROUTER)
        assert changed.coverage_rule is CoverageRule.ANY_ROUTER
        assert problem.coverage_rule is CoverageRule.GIANT_ONLY


class TestBuild:
    def test_build_assembles_everything(self, rng):
        problem = ProblemInstance.build(
            width=16,
            height=12,
            n_routers=5,
            client_cells=[(0, 0), (3, 4)],
            radio=RadioProfile(1.0, 4.0),
            rng=rng,
            link_rule=LinkRule.OVERLAP,
            coverage_rule=CoverageRule.ANY_ROUTER,
        )
        assert problem.grid.width == 16
        assert problem.grid.height == 12
        assert problem.n_routers == 5
        assert problem.n_clients == 2
        assert problem.fleet.radii.min() >= 1.0
        assert problem.fleet.radii.max() <= 4.0
        assert problem.link_rule is LinkRule.OVERLAP
        assert problem.coverage_rule is CoverageRule.ANY_ROUTER

    def test_build_accepts_numpy_cells(self, rng):
        cells = np.array([[1, 2], [3, 4]])
        problem = ProblemInstance.build(
            width=8,
            height=8,
            n_routers=2,
            client_cells=cells,
            radio=RadioProfile(1.0, 2.0),
            rng=rng,
        )
        assert problem.clients[0].cell == Point(1, 2)
