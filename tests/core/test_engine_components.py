"""Tests for the engine's vectorized component labeling.

Label propagation (single and batched) is cross-validated against the
union-find reference: same canonical (smallest-member) labels, exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.connectivity import (
    UnionFind,
    canonical_labels,
    connected_components,
    connected_components_from_arrays,
)
from repro.core.engine.components import (
    batch_labels_from_adjacency,
    labels_from_adjacency,
    labels_from_edges,
    structure_from_labels,
)


def random_edges(n: int, n_edges: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if n_edges == 0:
        return np.zeros((0, 2), dtype=np.intp)
    edges = rng.integers(0, n, size=(n_edges, 2))
    return edges[edges[:, 0] != edges[:, 1]]


class TestLabelsFromEdges:
    def test_empty_graph(self):
        assert labels_from_edges(0, np.array([]), np.array([])).shape == (0,)

    def test_no_edges(self):
        labels = labels_from_edges(5, np.array([]), np.array([]))
        assert np.array_equal(labels, np.arange(5))

    def test_path_graph_collapses_to_zero(self):
        rows = np.arange(9)
        cols = np.arange(1, 10)
        labels = labels_from_edges(10, rows, cols)
        assert np.array_equal(labels, np.zeros(10, dtype=np.intp))

    def test_labels_are_smallest_member(self):
        labels = labels_from_edges(6, np.array([4, 1]), np.array([5, 2]))
        assert labels.tolist() == [0, 1, 1, 3, 4, 4]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            labels_from_edges(3, np.array([0]), np.array([3]))

    def test_negative_node_count_rejected(self):
        with pytest.raises(ValueError):
            labels_from_edges(-1, np.array([]), np.array([]))

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 40), st.integers(0, 120), st.integers(0, 10_000))
    def test_matches_union_find_exactly(self, n, n_edges, seed):
        edges = random_edges(n, n_edges, seed)
        reference = connected_components(
            n, [(int(a), int(b)) for a, b in edges]
        )
        labels = labels_from_edges(n, edges[:, 0], edges[:, 1])
        assert np.array_equal(labels, reference.labels)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 30), st.integers(0, 80), st.integers(0, 10_000))
    def test_structure_matches_reference(self, n, n_edges, seed):
        edges = random_edges(n, n_edges, seed)
        reference = connected_components_from_arrays(n, edges[:, 0], edges[:, 1])
        ours = structure_from_labels(
            labels_from_edges(n, edges[:, 0], edges[:, 1])
        )
        assert ours.sizes == reference.sizes
        assert ours.giant_size == reference.giant_size
        assert ours.giant_label() == reference.giant_label()
        assert np.array_equal(ours.giant_mask(), reference.giant_mask())


class TestAdjacencyLabeling:
    def test_single_matrix(self):
        adjacency = np.zeros((4, 4), dtype=bool)
        adjacency[0, 2] = adjacency[2, 0] = True
        labels = labels_from_adjacency(adjacency)
        assert labels.tolist() == [0, 1, 0, 3]

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            labels_from_adjacency(np.zeros((2, 3), dtype=bool))

    def test_batch_empty_stack(self):
        labels = batch_labels_from_adjacency(np.zeros((0, 4, 4), dtype=bool))
        assert labels.shape == (0, 4)

    def test_rejects_non_stack(self):
        with pytest.raises(ValueError):
            batch_labels_from_adjacency(np.zeros((4, 4), dtype=bool))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 6), st.integers(1, 16), st.integers(0, 10_000))
    def test_batch_matches_per_candidate(self, k, n, seed):
        rng = np.random.default_rng(seed)
        stack = rng.uniform(size=(k, n, n)) < 0.2
        stack = stack | stack.transpose(0, 2, 1)
        diagonal = np.arange(n)
        stack[:, diagonal, diagonal] = False
        batched = batch_labels_from_adjacency(stack)
        assert batched.shape == (k, n)
        for index in range(k):
            assert np.array_equal(
                batched[index], labels_from_adjacency(stack[index])
            )


class TestCanonicalLabels:
    def test_empty(self):
        assert canonical_labels(np.array([], dtype=np.intp)).shape == (0,)

    def test_root_labels_canonicalized(self):
        # Component {0, 2} labeled by root 2, {1} by root 1.
        raw = np.array([2, 1, 2])
        assert canonical_labels(raw).tolist() == [0, 1, 0]

    def test_vectorized_union_find_labels_are_roots(self):
        dsu = UnionFind(6)
        dsu.union(0, 3)
        dsu.union(3, 5)
        labels = dsu.labels()
        assert labels[0] == labels[3] == labels[5]
        assert labels[1] != labels[0]
        # Every label is the root of its element's set.
        assert all(int(labels[i]) == dsu.find(i) for i in range(6))


class TestGiantLabelCache:
    def test_cached_value_is_stable(self):
        structure = connected_components(4, [(0, 1), (2, 3)])
        first = structure.giant_label()
        assert structure.giant_label() == first
        assert structure.giant_mask().tolist() == [True, True, False, False]
