"""Spatial-grid index edge cases and engine dispatch.

The sparse engine's correctness rests on the bin prune being strictly
conservative; these tests drive the index through the degenerate
geometries where that is easiest to get wrong — one giant bin, bins
larger than the data, queries outside the indexed extent, float
positions — and pin the dispatch heuristic on representative instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import coverage_matrix
from repro.core.engine import (
    SparseEngine,
    SpatialGridIndex,
    select_engine,
    sparse_edges,
)
from repro.core.engine.dispatch import resolve_engine
from repro.core.engine.sparse import coverage_cell_size, link_cell_size
from repro.core.evaluation import Evaluator
from repro.core.network import adjacency_matrix
from repro.core.problem import ProblemInstance
from repro.core.radio import CoverageRule, LinkRule, RadioProfile
from repro.core.solution import Placement
from repro.instances.catalog import city_medium, city_spec, paper_normal, tiny_spec


def pair_set(rows: np.ndarray, cols: np.ndarray) -> set[tuple[int, int]]:
    return {
        (min(a, b), max(a, b)) for a, b in zip(rows.tolist(), cols.tolist())
    }


def dense_pair_set(adjacency: np.ndarray) -> set[tuple[int, int]]:
    rows, cols = np.nonzero(np.triu(adjacency))
    return set(zip(rows.tolist(), cols.tolist()))


class TestSpatialGridIndex:
    def test_all_points_in_one_bin(self):
        # Cell size dwarfs the data: every unordered pair is a candidate,
        # exactly once.
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 5, size=(20, 2))
        index = SpatialGridIndex(points, cell_size=100.0)
        rows, cols = index.candidate_pairs()
        assert rows.size == 20 * 19 // 2
        assert len(pair_set(rows, cols)) == rows.size
        assert not np.any(rows == cols)

    def test_empty_index(self):
        index = SpatialGridIndex(np.zeros((0, 2)), cell_size=4.0)
        rows, cols = index.candidate_pairs()
        assert rows.size == 0 and cols.size == 0
        queries, members = index.query_points(np.array([[1.0, 1.0]]))
        assert queries.size == 0 and members.size == 0

    def test_single_point(self):
        index = SpatialGridIndex(np.array([[2.0, 3.0]]), cell_size=4.0)
        rows, cols = index.candidate_pairs()
        assert rows.size == 0
        queries, members = index.query_points(np.array([[2.5, 3.5]]))
        assert members.tolist() == [0]

    def test_candidate_pairs_are_superset_of_in_range_pairs(self):
        rng = np.random.default_rng(11)
        points = rng.uniform(0, 200, size=(120, 2))
        cell = 7.0
        index = SpatialGridIndex(points, cell_size=cell)
        candidates = pair_set(*index.candidate_pairs())
        dx = points[:, 0:1] - points[np.newaxis, :, 0]
        dy = points[:, 1:2] - points[np.newaxis, :, 1]
        within = dx * dx + dy * dy <= cell * cell
        for a, b in zip(*np.nonzero(np.triu(within, k=1))):
            assert (int(a), int(b)) in candidates

    def test_query_far_outside_extent_finds_nothing(self):
        points = np.arange(10, dtype=float).reshape(5, 2)
        index = SpatialGridIndex(points, cell_size=4.0)
        queries, members = index.query_points(np.array([[1000.0, -500.0]]))
        assert queries.size == 0 and members.size == 0

    def test_query_just_outside_extent_sees_boundary_bins(self):
        # A query one bin off the extent still reaches the edge bins.
        points = np.array([[0.5, 0.5], [3.5, 3.5]])
        index = SpatialGridIndex(points, cell_size=4.0)
        queries, members = index.query_points(np.array([[-1.0, 0.0]]))
        assert set(members.tolist()) == {0, 1}

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            SpatialGridIndex(np.zeros((3, 3)), cell_size=1.0)
        with pytest.raises(ValueError):
            SpatialGridIndex(np.zeros((3, 2)), cell_size=0.0)
        index = SpatialGridIndex(np.zeros((3, 2)), cell_size=1.0)
        with pytest.raises(ValueError):
            index.query_points(np.zeros((2, 3)))


class TestSparseEdgesEdgeCases:
    def test_radius_larger_than_whole_grid(self):
        # Every router reaches every other: the sparse edge set must be
        # the complete graph, exactly like the dense matrix.
        rng = np.random.default_rng(5)
        problem = ProblemInstance.build(
            16, 16, 8, [(1, 1), (14, 14)], RadioProfile(50.0, 50.0), rng
        )
        placement = Placement.random(problem.grid, 8, rng)
        positions = placement.positions_array()
        for rule in LinkRule:
            rows, cols = sparse_edges(positions, problem.fleet.radii, rule)
            assert pair_set(rows, cols) == dense_pair_set(
                adjacency_matrix(positions, problem.fleet.radii, rule)
            )
            assert rows.size == 8 * 7 // 2

    def test_all_routers_in_one_bin(self):
        # A tight cluster on a big area: one occupied bin, dense-complete
        # candidate set, still exact.
        rng = np.random.default_rng(9)
        radii = rng.uniform(50, 60, size=12)
        positions = rng.uniform(100, 104, size=(12, 2))
        for rule in LinkRule:
            rows, cols = sparse_edges(positions, radii, rule)
            assert pair_set(rows, cols) == dense_pair_set(
                adjacency_matrix(positions, radii, rule)
            )

    def test_non_integral_positions_float_path(self):
        # The sparse predicate always runs the float64 reference
        # formulas, so fractional coordinates need no special casing.
        rng = np.random.default_rng(13)
        positions = rng.uniform(0, 90, size=(40, 2))
        radii = rng.uniform(2, 9, size=40)
        for rule in LinkRule:
            rows, cols = sparse_edges(positions, radii, rule)
            assert pair_set(rows, cols) == dense_pair_set(
                adjacency_matrix(positions, radii, rule)
            )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            sparse_edges(
                np.zeros((4, 2)), np.zeros(3), LinkRule.BIDIRECTIONAL
            )


class TestSparseCoverageEdgeCases:
    def make_problem(self, client_cells, radio=RadioProfile(2.0, 2.0), side=64):
        rng = np.random.default_rng(2)
        return ProblemInstance.build(
            side, side, 4, client_cells, radio, rng,
            coverage_rule=CoverageRule.ANY_ROUTER,
        )

    def test_clients_outside_every_occupied_bin(self):
        # Routers cluster in one corner, clients in the opposite one:
        # no candidate pairs, zero coverage — and bit-equal to dense.
        problem = self.make_problem([(60, 60), (61, 61), (63, 60)])
        placement = Placement.from_cells(
            problem.grid, [(0, 0), (1, 0), (0, 1), (1, 1)]
        )
        engine = SparseEngine(problem)
        evaluation = engine.evaluate(placement)
        assert evaluation.covered_clients == 0
        reference = Evaluator(problem, engine="dense").evaluate(placement)
        assert reference.metrics == evaluation.metrics

    def test_no_clients(self):
        problem = self.make_problem([])
        placement = Placement.from_cells(
            problem.grid, [(0, 0), (5, 5), (10, 10), (15, 15)]
        )
        engine = SparseEngine(problem)
        evaluation = engine.evaluate(placement)
        assert evaluation.covered_clients == 0
        assert evaluation.metrics.n_clients == 0

    def test_covered_count_matches_dense_matrix(self):
        rng = np.random.default_rng(23)
        cells = [tuple(map(int, c)) for c in rng.integers(0, 64, size=(50, 2))]
        problem = self.make_problem(cells, radio=RadioProfile(3.0, 9.0))
        placement = Placement.random(problem.grid, 4, rng)
        positions = placement.positions_array()
        engine = SparseEngine(problem)
        matrix = coverage_matrix(
            problem.clients.positions, positions, problem.fleet.radii
        )
        assert engine.covered_count(positions, None) == int(
            matrix.any(axis=1).sum()
        )
        mask = np.array([True, False, True, False])
        assert engine.covered_count(positions, mask) == int(
            matrix[:, mask].any(axis=1).sum()
        )

    def test_query_chunk_does_not_change_counts(self):
        rng = np.random.default_rng(29)
        cells = [tuple(map(int, c)) for c in rng.integers(0, 64, size=(80, 2))]
        problem = self.make_problem(cells, radio=RadioProfile(3.0, 9.0))
        placement = Placement.random(problem.grid, 4, rng)
        baseline = SparseEngine(problem).evaluate(placement)
        chunked = SparseEngine(problem, query_chunk=1).evaluate(placement)
        assert baseline.metrics == chunked.metrics
        with pytest.raises(ValueError):
            SparseEngine(problem, query_chunk=0)


class TestEngineDispatch:
    def test_paper_scale_stays_dense(self):
        problem = paper_normal().generate()
        assert select_engine(problem) == "dense"
        # "auto" promotes to the compiled tier when its kernels built;
        # the layout heuristic is asserted above either way.
        assert Evaluator(problem).engine in ("dense", "compiled")
        assert Evaluator(problem, engine="dense").engine == "dense"

    def test_city_scale_goes_sparse(self):
        spec = city_medium()
        assert spec.n_routers == 2048 and spec.n_clients == 20_000
        # 1024 routers / 4k clients already crosses the dense cell
        # budget on the city frame.
        problem = city_spec(1024, 4_000, seed=3).generate()
        assert select_engine(problem) == "sparse"
        assert Evaluator(problem).engine in ("sparse", "compiled")
        assert Evaluator(problem, engine="sparse").engine == "sparse"

    def test_whole_grid_radio_stays_dense(self):
        # Big instance but the bin ring tiles the area: binning would
        # prune nothing, so dispatch keeps the dense path.
        rng = np.random.default_rng(7)
        problem = ProblemInstance.build(
            64, 64, 512,
            [tuple(map(int, c)) for c in rng.integers(0, 64, size=(5000, 2))],
            RadioProfile(30.0, 60.0), rng,
        )
        assert select_engine(problem) == "dense"

    def test_override_and_validation(self):
        problem = tiny_spec(seed=1).generate()
        assert resolve_engine(problem, "sparse") == "sparse"
        assert resolve_engine(problem, "dense") == "dense"
        assert Evaluator(problem, engine="sparse").engine == "sparse"
        with pytest.raises(ValueError):
            resolve_engine(problem, "turbo")
        with pytest.raises(ValueError):
            Evaluator(problem, engine="turbo")

    def test_cell_sizes(self):
        radii = np.array([1.5, 7.0])
        assert link_cell_size(radii, LinkRule.OVERLAP) == 14.0
        assert link_cell_size(radii, LinkRule.BIDIRECTIONAL) == 7.0
        assert link_cell_size(radii, LinkRule.UNIDIRECTIONAL) == 7.0
        assert coverage_cell_size(radii) == 7.0
        assert link_cell_size(np.zeros(0), LinkRule.OVERLAP) == 1.0
        assert coverage_cell_size(np.zeros(0)) == 1.0
