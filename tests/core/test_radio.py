"""Unit and property tests for the radio coverage model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.radio import CoverageRule, LinkRule, RadioProfile

radii = st.floats(min_value=0.1, max_value=50, allow_nan=False)


class TestLinkRule:
    def test_overlap_range(self):
        assert LinkRule.OVERLAP.link_range(3, 4) == 7

    def test_bidirectional_range(self):
        assert LinkRule.BIDIRECTIONAL.link_range(3, 4) == 3

    def test_unidirectional_range(self):
        assert LinkRule.UNIDIRECTIONAL.link_range(3, 4) == 4

    def test_links_at_boundary_inclusive(self):
        assert LinkRule.OVERLAP.links(7.0, 3, 4)
        assert not LinkRule.OVERLAP.links(7.0001, 3, 4)

    def test_rules_ordering(self):
        # bidirectional is the strictest, overlap the loosest
        for d in [1.0, 3.5, 6.9]:
            if LinkRule.BIDIRECTIONAL.links(d, 3, 4):
                assert LinkRule.UNIDIRECTIONAL.links(d, 3, 4)
            if LinkRule.UNIDIRECTIONAL.links(d, 3, 4):
                assert LinkRule.OVERLAP.links(d, 3, 4)

    @given(radii, radii)
    def test_link_range_symmetric(self, a, b):
        for rule in LinkRule:
            assert rule.link_range(a, b) == rule.link_range(b, a)

    @pytest.mark.parametrize("rule", list(LinkRule))
    def test_range_matrix_matches_scalar(self, rule):
        values = np.array([1.0, 2.5, 4.0, 7.0])
        matrix = rule.range_matrix(values)
        assert matrix.shape == (4, 4)
        for i in range(4):
            for j in range(4):
                assert matrix[i, j] == pytest.approx(
                    rule.link_range(values[i], values[j])
                )

    @pytest.mark.parametrize("rule", list(LinkRule))
    def test_range_matrix_symmetric(self, rule):
        values = np.array([3.0, 1.0, 9.0, 2.0, 5.5])
        matrix = rule.range_matrix(values)
        assert np.array_equal(matrix, matrix.T)

    def test_enum_round_trip_by_value(self):
        assert LinkRule("overlap") is LinkRule.OVERLAP
        assert LinkRule("bidirectional") is LinkRule.BIDIRECTIONAL
        assert LinkRule("unidirectional") is LinkRule.UNIDIRECTIONAL


class TestCoverageRule:
    def test_values(self):
        assert CoverageRule("giant-only") is CoverageRule.GIANT_ONLY
        assert CoverageRule("any-router") is CoverageRule.ANY_ROUTER


class TestRadioProfile:
    def test_valid(self):
        p = RadioProfile(2.0, 8.0)
        assert p.mean_radius == 5.0

    def test_degenerate_interval_allowed(self):
        p = RadioProfile(3.0, 3.0)
        assert p.mean_radius == 3.0

    def test_non_positive_min_rejected(self):
        with pytest.raises(ValueError):
            RadioProfile(0.0, 5.0)
        with pytest.raises(ValueError):
            RadioProfile(-1.0, 5.0)

    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError):
            RadioProfile(5.0, 2.0)

    def test_sample_radii_within_interval(self, rng):
        p = RadioProfile(2.0, 8.0)
        samples = p.sample_radii(1000, rng)
        assert samples.shape == (1000,)
        assert samples.min() >= 2.0
        assert samples.max() <= 8.0

    def test_sample_radii_degenerate(self, rng):
        samples = RadioProfile(4.0, 4.0).sample_radii(10, rng)
        assert np.allclose(samples, 4.0)

    def test_sample_radii_negative_count(self, rng):
        with pytest.raises(ValueError):
            RadioProfile(1.0, 2.0).sample_radii(-1, rng)

    def test_sample_radii_zero_count(self, rng):
        assert RadioProfile(1.0, 2.0).sample_radii(0, rng).shape == (0,)

    def test_sampling_deterministic_by_seed(self):
        p = RadioProfile(1.0, 9.0)
        a = p.sample_radii(32, np.random.default_rng(7))
        b = p.sample_radii(32, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_sample_mean_approximates_profile_mean(self):
        p = RadioProfile(2.0, 10.0)
        samples = p.sample_radii(20_000, np.random.default_rng(0))
        assert samples.mean() == pytest.approx(p.mean_radius, abs=0.1)
