"""Boundary tests for the engine-dispatch heuristic.

``select_engine`` draws two documented lines — the dense cell budget
and the bin-ring area fraction.  These tests pin both *exactly at* the
boundary (inclusive side) and one step past it, so a future edit cannot
silently flip an inequality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine.dispatch import (
    DENSE_CELL_BUDGET,
    ENGINE_TIERS,
    resolve_engine,
    select_engine,
)
from repro.core.engine.sparse import link_cell_size
from repro.core.problem import ProblemInstance
from repro.core.radio import LinkRule, RadioProfile
from repro.instances.catalog import tiny_spec


def make_problem(width, height, n_routers, n_clients, radius):
    rng = np.random.default_rng(0)
    cells = [(i % width, i // width) for i in range(n_clients)]
    return ProblemInstance.build(
        width, height, n_routers, cells, RadioProfile(radius, radius), rng
    )


class TestDenseCellBudget:
    def test_exactly_at_budget_is_dense(self):
        # 2048^2 + 0 * 2048 == 1 << 22: the budget is inclusive.
        problem = make_problem(64, 64, 2048, 0, radius=1.0)
        assert problem.n_routers**2 == DENSE_CELL_BUDGET
        assert select_engine(problem) == "dense"

    def test_one_client_past_budget_is_sparse(self):
        # 2048^2 + 1 * 2048 exceeds the budget; with unit radii the bin
        # ring is tiny, so the ring check cannot rescue dense.
        problem = make_problem(64, 64, 2048, 1, radius=1.0)
        cells = problem.n_routers**2 + problem.n_clients * problem.n_routers
        assert cells == DENSE_CELL_BUDGET + problem.n_routers
        assert select_engine(problem) == "sparse"


class TestRingAreaFraction:
    # Fixed radii make the bin width exact: BIDIRECTIONAL reach is the
    # (single) radius, so cell == radius for integer radii.
    RADIUS = 16.0

    def test_ring_covering_half_the_area_is_dense(self):
        # 9 * 16^2 == 0.5 * (64 * 72): equality stays dense (inclusive).
        problem = make_problem(64, 72, 2048, 1, radius=self.RADIUS)
        cell = link_cell_size(problem.fleet.radii, problem.link_rule)
        area = float(problem.grid.width) * float(problem.grid.height)
        assert 9.0 * cell * cell == 0.5 * area
        assert select_engine(problem) == "dense"

    def test_ring_just_under_half_the_area_is_sparse(self):
        # One extra grid row tips the fraction below one half.
        problem = make_problem(64, 73, 2048, 1, radius=self.RADIUS)
        cell = link_cell_size(problem.fleet.radii, problem.link_rule)
        area = float(problem.grid.width) * float(problem.grid.height)
        assert 9.0 * cell * cell < 0.5 * area
        assert select_engine(problem) == "sparse"

    def test_overlap_rule_doubles_the_reach(self):
        # Under OVERLAP the same radii double the bin width, pushing the
        # ring back over the half-area line: dispatch is rule-aware.
        problem = make_problem(64, 73, 2048, 1, radius=self.RADIUS)
        overlap = problem.with_link_rule(LinkRule.OVERLAP)
        assert select_engine(problem) == "sparse"
        assert select_engine(overlap) == "dense"


class TestZeroClients:
    def test_zero_client_instances_dispatch_and_evaluate(self):
        from repro.core.evaluation import Evaluator
        from repro.core.solution import Placement

        problem = make_problem(32, 32, 16, 0, radius=4.0)
        assert select_engine(problem) == "dense"
        rng = np.random.default_rng(1)
        placement = Placement.random(problem.grid, problem.n_routers, rng)
        for engine in ("dense", "sparse"):
            evaluation = Evaluator(problem, engine=engine).evaluate(placement)
            assert evaluation.covered_clients == 0
            assert evaluation.metrics.n_clients == 0


class TestResolveEngine:
    def test_forced_tiers_resolve_to_themselves(self):
        problem = tiny_spec(seed=1).generate()
        assert resolve_engine(problem, "dense") == "dense"
        assert resolve_engine(problem, "sparse") == "sparse"

    def test_auto_resolves_to_a_known_tier(self):
        problem = tiny_spec(seed=1).generate()
        resolved = resolve_engine(problem, "auto")
        assert resolved in ENGINE_TIERS and resolved != "auto"

    def test_auto_with_gate_disabled_matches_select(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED", "0")
        problem = tiny_spec(seed=1).generate()
        assert resolve_engine(problem, "auto") == select_engine(problem)

    def test_unknown_tier_message_derives_from_tuple(self):
        problem = tiny_spec(seed=1).generate()
        with pytest.raises(ValueError) as excinfo:
            resolve_engine(problem, "warp")
        message = str(excinfo.value)
        assert message == (
            "engine must be one of "
            + ", ".join(repr(tier) for tier in ENGINE_TIERS)
            + ", got 'warp'"
        )
