"""Non-finite input gates: NaN/inf must fail loudly, never flow through.

NaN compares false with everything, so a non-finite radius or client
position would silently pass every range check and come back as garbage
fitness from whichever engine tier evaluates it.  Two gates reject such
inputs with a clear ``ValueError``:

* :class:`ProblemInstance` construction — the choke point every
  instance passes through, naming the offending ids.
* :class:`Evaluator` construction — re-checked per engine tier, which
  also catches arrays mutated *after* instance validation (the frozen
  dataclasses hold numpy arrays; ``object.__setattr__`` can swap them).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.engine import compiled
from repro.core.evaluation import Evaluator
from repro.core.problem import ProblemInstance

needs_compiled = pytest.mark.skipif(
    not compiled.is_available(),
    reason="compiled kernels not available (no C toolchain?)",
)

ENGINE_TIERS = [
    "dense",
    "sparse",
    pytest.param("compiled", marks=needs_compiled),
]


def with_nan_radius(problem, router_id=2):
    """The problem with one radius swapped to NaN, bypassing the
    construction gate (mutation after validation)."""
    bad = problem.fleet.radii.copy()
    bad[router_id] = np.nan
    object.__setattr__(problem.fleet, "_radii", bad)
    return problem


def with_inf_position(problem, client_id=1):
    bad = problem.clients.positions.copy()
    bad[client_id, 0] = np.inf
    object.__setattr__(problem.clients, "_positions", bad)
    return problem


class TestProblemGate:
    def test_nan_radius_rejected_with_router_id(self, tiny_problem):
        fleet = with_nan_radius(tiny_problem, router_id=3).fleet
        with pytest.raises(ValueError, match=r"radii must be finite.*\[3\]"):
            dataclasses.replace(tiny_problem, fleet=fleet)

    def test_inf_radius_rejected(self, tiny_problem):
        bad = tiny_problem.fleet.radii.copy()
        bad[0] = np.inf
        object.__setattr__(tiny_problem.fleet, "_radii", bad)
        with pytest.raises(ValueError, match="radii must be finite"):
            dataclasses.replace(tiny_problem, fleet=tiny_problem.fleet)

    def test_nan_client_position_rejected_with_client_id(self, tiny_problem):
        bad = tiny_problem.clients.positions.copy()
        bad[5] = np.nan
        object.__setattr__(tiny_problem.clients, "_positions", bad)
        with pytest.raises(
            ValueError, match=r"positions must be finite.*\[5\]"
        ):
            dataclasses.replace(tiny_problem, clients=tiny_problem.clients)

    def test_finite_instance_constructs(self, tiny_problem):
        rebuilt = dataclasses.replace(tiny_problem)
        assert rebuilt.n_routers == tiny_problem.n_routers


class TestEvaluatorGate:
    """The per-tier re-check: post-validation mutations are caught
    before any engine sees them."""

    @pytest.mark.parametrize("engine", ENGINE_TIERS)
    def test_nan_radius_rejected_per_tier(self, tiny_problem, engine):
        problem = with_nan_radius(tiny_problem)
        with pytest.raises(ValueError, match="radii must be finite"):
            Evaluator(problem, engine=engine)

    @pytest.mark.parametrize("engine", ENGINE_TIERS)
    def test_inf_position_rejected_per_tier(self, tiny_problem, engine):
        problem = with_inf_position(tiny_problem)
        with pytest.raises(ValueError, match="positions must be finite"):
            Evaluator(problem, engine=engine)

    @pytest.mark.parametrize("engine", ENGINE_TIERS)
    def test_finite_instance_evaluates_per_tier(self, tiny_problem, engine):
        evaluator = Evaluator(tiny_problem, engine=engine)
        from repro.core.solution import Placement

        rng = np.random.default_rng(1)
        placement = Placement.random(
            tiny_problem.grid, tiny_problem.n_routers, rng
        )
        assert np.isfinite(evaluator.evaluate(placement).fitness)
