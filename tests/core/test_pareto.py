"""Unit and property tests for the Pareto archive."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluation import Evaluator
from repro.core.fitness import LexicographicFitness, WeightedSumFitness
from repro.core.pareto import ParetoArchive, dominates
from repro.core.solution import Placement
from repro.neighborhood.movements import RandomMovement
from repro.neighborhood.search import NeighborhoodSearch


class TestDominates:
    def test_strict_domination(self):
        assert dominates((5, 10), (4, 10))
        assert dominates((5, 10), (5, 9))
        assert dominates((5, 10), (4, 9))

    def test_equal_does_not_dominate(self):
        assert not dominates((5, 10), (5, 10))

    def test_incomparable(self):
        assert not dominates((5, 10), (6, 9))
        assert not dominates((6, 9), (5, 10))

    @given(
        st.tuples(st.integers(0, 20), st.integers(0, 20)),
        st.tuples(st.integers(0, 20), st.integers(0, 20)),
    )
    def test_antisymmetric(self, a, b):
        assert not (dominates(a, b) and dominates(b, a))


def evaluate_some(problem, count, rng):
    evaluator = Evaluator(problem)
    return [
        evaluator.evaluate(
            Placement.random(problem.grid, problem.n_routers, rng)
        )
        for _ in range(count)
    ]


class TestParetoArchive:
    def test_front_is_mutually_non_dominated(self, tiny_problem, rng):
        archive = ParetoArchive()
        for evaluation in evaluate_some(tiny_problem, 40, rng):
            archive.observe(evaluation)
        vectors = archive.objective_vectors()
        for i, a in enumerate(vectors):
            for b in vectors[i + 1 :]:
                assert not dominates(a, b)
                assert not dominates(b, a)

    def test_front_dominates_everything_observed(self, tiny_problem, rng):
        archive = ParetoArchive()
        observed = evaluate_some(tiny_problem, 40, rng)
        for evaluation in observed:
            archive.observe(evaluation)
        front = archive.objective_vectors()
        for evaluation in observed:
            key = (evaluation.giant_size, evaluation.covered_clients)
            assert any(point == key or dominates(point, key) for point in front)

    def test_observe_counts(self, tiny_problem, rng):
        archive = ParetoArchive()
        for evaluation in evaluate_some(tiny_problem, 10, rng):
            archive.observe(evaluation)
        assert archive.n_observed == 10
        assert 1 <= len(archive) <= 10

    def test_duplicate_rejected(self, tiny_problem, rng):
        archive = ParetoArchive()
        evaluation = evaluate_some(tiny_problem, 1, rng)[0]
        assert archive.observe(evaluation)
        assert not archive.observe(evaluation)
        assert len(archive) == 1

    def test_front_sorted_by_giant_descending(self, tiny_problem, rng):
        archive = ParetoArchive()
        for evaluation in evaluate_some(tiny_problem, 30, rng):
            archive.observe(evaluation)
        giants = [point.giant_size for point in archive.front()]
        assert giants == sorted(giants, reverse=True)

    def test_best_by_fitness(self, tiny_problem, rng):
        archive = ParetoArchive()
        for evaluation in evaluate_some(tiny_problem, 30, rng):
            archive.observe(evaluation)
        connectivity_pick = archive.best_by(WeightedSumFitness(1.0, 0.0))
        lexicographic_pick = archive.best_by(LexicographicFitness())
        assert connectivity_pick.giant_size == max(
            point.giant_size for point in archive.front()
        )
        assert lexicographic_pick.giant_size == connectivity_pick.giant_size

    def test_best_by_empty_raises(self):
        with pytest.raises(ValueError):
            ParetoArchive().best_by(WeightedSumFitness())

    def test_plugged_into_evaluator_and_search(self, tiny_problem, rng):
        archive = ParetoArchive()
        evaluator = Evaluator(tiny_problem, archive=archive)
        initial = Placement.random(
            tiny_problem.grid, tiny_problem.n_routers, rng
        )
        search = NeighborhoodSearch(
            RandomMovement(), n_candidates=6, max_phases=8
        )
        result = search.run(evaluator, initial, rng)
        assert archive.n_observed == result.n_evaluations
        best_key = (result.best.giant_size, result.best.covered_clients)
        front = archive.objective_vectors()
        # The search's best solution must sit on (or be dominated by a
        # point of) the observed front.
        assert any(point == best_key or dominates(point, best_key) for point in front)


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 10)),
        min_size=1,
        max_size=40,
    )
)
def test_archive_front_matches_bruteforce(pairs):
    """Archive result equals a brute-force non-dominated filter."""

    class FakeEvaluation:
        def __init__(self, giant, covered):
            self.giant_size = giant
            self.covered_clients = covered

    archive = ParetoArchive()
    for giant, covered in pairs:
        archive.observe(FakeEvaluation(giant, covered))

    unique = set(pairs)
    brute = {
        p
        for p in unique
        if not any(dominates(q, p) for q in unique)
    }
    assert set(archive.objective_vectors()) == brute
