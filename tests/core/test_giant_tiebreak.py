"""Exact giant-size ties must break identically on every engine.

Audit of the delta engine's ``counts.argmax()`` giant selection (see
``repro/core/engine/delta.py``): component labels are canonical
smallest-member ids on every path, so ``argmax`` — which returns the
*first* maximum — picks the smallest label among the largest components,
which is exactly :meth:`ComponentStructure.giant_label`'s rule.  These
tests construct placements with two components of exactly equal size
(where the old union-find-root tie-break was order-dependent) and assert
that the scalar, batch, delta-dense, delta-sparse and sparse engines all
select the same component, including its GIANT_ONLY coverage
consequences.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import BatchEvaluator, DeltaEvaluator, SparseEngine
from repro.core.evaluation import Evaluator
from repro.core.geometry import Point
from repro.core.problem import ProblemInstance
from repro.core.radio import CoverageRule, RadioProfile
from repro.core.solution import Placement
from repro.neighborhood.moves import RelocateMove


def tie_problem() -> ProblemInstance:
    # Uniform radius 1: routers link iff adjacent cells.  One client on
    # each would-be giant, so the tie-break is visible in the coverage
    # metric under GIANT_ONLY, not just in the mask.
    rng = np.random.default_rng(0)
    return ProblemInstance.build(
        32, 32, 6, [(0, 0), (10, 10)], RadioProfile(1.0, 1.0), rng,
        coverage_rule=CoverageRule.GIANT_ONLY,
    )


def tie_placement(problem: ProblemInstance) -> Placement:
    # Components: {0, 5} at (10,10)-(10,11) and {2, 3} at (0,0)-(0,1),
    # routers 1 and 4 isolated.  Sizes tie at 2; the smallest-member
    # rule must pick the component containing router 0.
    return Placement.from_cells(
        problem.grid,
        [(10, 10), (20, 20), (0, 0), (0, 1), (25, 25), (10, 11)],
    )


EXPECTED_GIANT = np.array([True, False, False, False, False, True])


class TestExactGiantTie:
    def test_all_engines_agree_on_the_tie(self):
        problem = tie_problem()
        placement = tie_placement(problem)
        scalar = Evaluator(problem, engine="dense").evaluate(placement)
        assert scalar.giant_size == 2
        assert np.array_equal(scalar.giant_mask, EXPECTED_GIANT)
        # Router 0's component wins, so only the client at (10, 10) is
        # covered.
        assert scalar.covered_clients == 1

        batch = BatchEvaluator(problem, engine="dense").evaluate(placement)
        sparse = SparseEngine(problem).evaluate(placement)
        for other in (batch, sparse):
            assert other.metrics == scalar.metrics
            assert other.fitness == scalar.fitness
            assert np.array_equal(other.giant_mask, scalar.giant_mask)

        for engine in ("dense", "sparse"):
            delta = DeltaEvaluator(Evaluator(problem), engine=engine)
            evaluation = delta.reset(placement)
            assert evaluation.metrics == scalar.metrics
            assert np.array_equal(evaluation.giant_mask, scalar.giant_mask)

    def test_delta_propose_into_an_exact_tie(self):
        # The tie must also break canonically when it *arises* from an
        # incremental update, not just a full rebuild: start with a
        # 3-router giant, then relocate one member into isolation so the
        # sizes tie at 2-2.
        problem = tie_problem()
        initial = Placement.from_cells(
            problem.grid,
            [(10, 10), (20, 20), (0, 0), (0, 1), (0, 2), (10, 11)],
        )
        move = RelocateMove(router_id=4, target=Point(25, 25))
        for engine in ("dense", "sparse"):
            delta = DeltaEvaluator(Evaluator(problem), engine=engine)
            start = delta.reset(initial)
            assert start.giant_size == 3
            assert start.covered_clients == 1  # client (0, 0) on the giant
            candidate = delta.propose(move)
            reference = Evaluator(problem, engine="dense").evaluate(
                move.apply(initial)
            )
            assert candidate.metrics == reference.metrics
            assert np.array_equal(candidate.giant_mask, reference.giant_mask)
            assert np.array_equal(candidate.giant_mask, EXPECTED_GIANT)
            assert candidate.covered_clients == 1  # flips to client (10, 10)
