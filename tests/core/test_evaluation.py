"""Unit tests for the evaluation engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clients import ClientSet
from repro.core.evaluation import Evaluator
from repro.core.fitness import LexicographicFitness, WeightedSumFitness
from repro.core.geometry import Point
from repro.core.grid import GridArea
from repro.core.network import RouterNetwork
from repro.core.problem import ProblemInstance
from repro.core.radio import CoverageRule
from repro.core.routers import RouterFleet
from repro.core.solution import Placement


@pytest.fixture
def simple():
    """Two linked routers plus one isolated; one client per region."""
    grid = GridArea(40, 8)
    problem = ProblemInstance(
        grid=grid,
        fleet=RouterFleet.from_radii([4.0, 4.0, 4.0]),
        clients=ClientSet.from_points(
            [Point(1, 1), Point(31, 1)], grid=grid
        ),
    )
    placement = Placement.from_cells(
        grid, [Point(0, 0), Point(3, 0), Point(30, 0)]
    )
    return problem, placement


class TestEvaluator:
    def test_metrics_consistent_with_network(self, simple):
        problem, placement = simple
        evaluation = Evaluator(problem).evaluate(placement)
        network = RouterNetwork.build(problem, placement)
        assert evaluation.metrics.giant_size == network.giant_size
        assert evaluation.metrics.n_links == network.n_links
        assert evaluation.metrics.n_components == network.components.n_components
        assert evaluation.metrics.mean_degree == pytest.approx(
            network.mean_degree()
        )
        assert np.array_equal(evaluation.giant_mask, network.giant_mask())

    def test_giant_only_coverage(self, simple):
        problem, placement = simple
        evaluation = Evaluator(problem).evaluate(placement)
        # Giant = routers 0,1 near client 0; client 1 is only near the
        # isolated router 2.
        assert evaluation.covered_clients == 1

    def test_any_router_coverage(self, simple):
        problem, placement = simple
        problem_any = problem.with_coverage_rule(CoverageRule.ANY_ROUTER)
        evaluation = Evaluator(problem_any).evaluate(placement)
        assert evaluation.covered_clients == 2

    def test_default_fitness_is_weighted_sum(self, simple):
        problem, placement = simple
        evaluator = Evaluator(problem)
        assert isinstance(evaluator.fitness_function, WeightedSumFitness)
        evaluation = evaluator.evaluate(placement)
        expected = 0.7 * (2 / 3) + 0.3 * (1 / 2)
        assert evaluation.fitness == pytest.approx(expected)

    def test_custom_fitness(self, simple):
        problem, placement = simple
        evaluation = Evaluator(problem, LexicographicFitness()).evaluate(placement)
        assert evaluation.fitness == pytest.approx(2 + 0.5 * 0.5)

    def test_counter_increments(self, simple):
        problem, placement = simple
        evaluator = Evaluator(problem)
        assert evaluator.n_evaluations == 0
        evaluator.evaluate(placement)
        evaluator.evaluate(placement)
        assert evaluator.n_evaluations == 2
        evaluator.reset_counter()
        assert evaluator.n_evaluations == 0

    def test_summary_format(self, simple):
        problem, placement = simple
        text = Evaluator(problem).evaluate(placement).summary()
        assert "giant=2/3" in text
        assert "coverage=1/2" in text
        assert "fitness=" in text

    def test_evaluation_properties(self, simple):
        problem, placement = simple
        evaluation = Evaluator(problem).evaluate(placement)
        assert evaluation.giant_size == evaluation.metrics.giant_size
        assert evaluation.covered_clients == evaluation.metrics.covered_clients
        assert evaluation.placement is placement

    def test_deterministic(self, simple):
        problem, placement = simple
        a = Evaluator(problem).evaluate(placement)
        b = Evaluator(problem).evaluate(placement)
        assert a.fitness == b.fitness
        assert a.metrics == b.metrics
