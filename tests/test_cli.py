"""End-to-end tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def instance_path(tmp_path):
    """A small instance generated through the CLI itself."""
    path = tmp_path / "instance.json"
    code = main(
        [
            "generate",
            str(path),
            "--distribution",
            "normal",
            "--width",
            "24",
            "--height",
            "24",
            "--routers",
            "8",
            "--clients",
            "20",
            "--seed",
            "3",
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("generate", "place", "search", "ga", "reproduce"):
            args = parser.parse_args(
                [command] + ([] if command == "reproduce" else ["x.json"])
            )
            assert args.command == command


class TestGenerate:
    def test_writes_valid_instance(self, instance_path, capsys):
        payload = json.loads(instance_path.read_text())
        assert payload["format"] == "repro.instance.v1"
        assert len(payload["radii"]) == 8
        assert len(payload["clients"]) == 20

    def test_invalid_parameters_exit_code(self, tmp_path, capsys):
        code = main(
            ["generate", str(tmp_path / "x.json"), "--routers", "0"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestPlace:
    def test_place_reports_metrics(self, instance_path, capsys):
        code = main(
            ["place", str(instance_path), "--method", "hotspot", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "giant=" in out

    def test_place_writes_placement(self, instance_path, tmp_path, capsys):
        out_path = tmp_path / "placement.json"
        code = main(
            [
                "place",
                str(instance_path),
                "--method",
                "near",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["format"] == "repro.placement.v1"
        assert len(payload["cells"]) == 8

    def test_place_render(self, instance_path, capsys):
        code = main(["place", str(instance_path), "--render"])
        assert code == 0
        out = capsys.readouterr().out
        assert "+---" in out or "+-" in out

    def test_missing_instance_file(self, tmp_path, capsys):
        code = main(["place", str(tmp_path / "nope.json")])
        assert code == 2


class TestSearch:
    @pytest.mark.parametrize("movement", ["swap", "swap-literal", "random"])
    def test_search_movements(self, instance_path, capsys, movement):
        code = main(
            [
                "search",
                str(instance_path),
                "--movement",
                movement,
                "--phases",
                "4",
                "--candidates",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phases" in out

    def test_search_trace_output(self, instance_path, capsys):
        code = main(
            [
                "search",
                str(instance_path),
                "--phases",
                "3",
                "--candidates",
                "2",
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phase    0" in out or "phase" in out


class TestReplicate:
    def test_replicate_prints_both_studies(self, instance_path, capsys):
        code = main(
            [
                "replicate",
                str(instance_path),
                "--seeds",
                "2",
                "--phases",
                "2",
                "--candidates",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stand-alone ad hoc methods" in out
        assert "neighborhood search movements" in out
        assert "+/-" in out


class TestGa:
    def test_ga_runs(self, instance_path, tmp_path, capsys):
        out_path = tmp_path / "best.json"
        code = main(
            [
                "ga",
                str(instance_path),
                "--init",
                "hotspot",
                "--population",
                "6",
                "--generations",
                "3",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "generations" in out
        assert out_path.exists()
