"""End-to-end tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def instance_path(tmp_path):
    """A small instance generated through the CLI itself."""
    path = tmp_path / "instance.json"
    code = main(
        [
            "generate",
            str(path),
            "--distribution",
            "normal",
            "--width",
            "24",
            "--height",
            "24",
            "--routers",
            "8",
            "--clients",
            "20",
            "--seed",
            "3",
        ]
    )
    assert code == 0
    return path


#: Every subcommand that evaluates placements (all but ``generate``,
#: which only writes an instance) and the positional arguments its
#: parser needs.
EVALUATING_COMMANDS = {
    "solve": ["x.json"],
    "place": ["x.json"],
    "search": ["x.json"],
    "ga": ["x.json"],
    "scenario": ["x.json"],
    "scenario-fleet": ["x.json"],
    "reproduce": [],
    "replicate": ["x.json"],
    "sweep": [],
}


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in (
            "generate", "solve", "place", "search", "ga", "scenario",
            "reproduce",
        ):
            args = parser.parse_args(
                [command]
                + ([] if command in ("reproduce", "solve") else ["x.json"])
            )
            assert args.command == command

    @pytest.mark.parametrize("command", sorted(EVALUATING_COMMANDS))
    @pytest.mark.parametrize("engine", ["auto", "dense", "sparse"])
    def test_engine_option_uniform(self, command, engine):
        """Every evaluating subcommand accepts --engine {auto,dense,sparse}."""
        args = build_parser().parse_args(
            [command, *EVALUATING_COMMANDS[command], "--engine", engine]
        )
        assert args.engine == engine

    @pytest.mark.parametrize("command", sorted(EVALUATING_COMMANDS))
    def test_engine_rejects_unknown(self, command):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [command, *EVALUATING_COMMANDS[command], "--engine", "quantum"]
            )


class TestGenerate:
    def test_writes_valid_instance(self, instance_path, capsys):
        payload = json.loads(instance_path.read_text())
        assert payload["format"] == "repro.instance.v1"
        assert len(payload["radii"]) == 8
        assert len(payload["clients"]) == 20

    def test_invalid_parameters_exit_code(self, tmp_path, capsys):
        code = main(
            ["generate", str(tmp_path / "x.json"), "--routers", "0"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestPlace:
    def test_place_reports_metrics(self, instance_path, capsys):
        code = main(
            ["place", str(instance_path), "--method", "hotspot", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "giant=" in out

    def test_place_writes_placement(self, instance_path, tmp_path, capsys):
        out_path = tmp_path / "placement.json"
        code = main(
            [
                "place",
                str(instance_path),
                "--method",
                "near",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["format"] == "repro.placement.v1"
        assert len(payload["cells"]) == 8

    def test_place_render(self, instance_path, capsys):
        code = main(["place", str(instance_path), "--render"])
        assert code == 0
        out = capsys.readouterr().out
        assert "+---" in out or "+-" in out

    def test_missing_instance_file(self, tmp_path, capsys):
        code = main(["place", str(tmp_path / "nope.json")])
        assert code == 2


class TestSearch:
    @pytest.mark.parametrize("movement", ["swap", "swap-literal", "random"])
    def test_search_movements(self, instance_path, capsys, movement):
        code = main(
            [
                "search",
                str(instance_path),
                "--movement",
                movement,
                "--phases",
                "4",
                "--candidates",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phases" in out

    def test_search_trace_output(self, instance_path, capsys):
        code = main(
            [
                "search",
                str(instance_path),
                "--phases",
                "3",
                "--candidates",
                "2",
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phase    0" in out or "phase" in out


class TestReplicate:
    def test_replicate_prints_both_studies(self, instance_path, capsys):
        code = main(
            [
                "replicate",
                str(instance_path),
                "--seeds",
                "2",
                "--phases",
                "2",
                "--candidates",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stand-alone ad hoc methods" in out
        assert "neighborhood search movements" in out
        assert "+/-" in out


class TestSolve:
    def test_list_solvers(self, capsys):
        code = main(["solve", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        for family in ("adhoc", "search", "annealing", "tabu", "multistart", "ga"):
            assert family in out
        assert "tabu:swap" in out

    def test_missing_instance_is_an_error(self, capsys):
        code = main(["solve"])
        assert code == 2
        assert "instance JSON" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "spec", ["adhoc:hotspot", "search:swap", "annealing:swap", "tabu:swap",
                 "multistart:swap", "ga:hotspot"]
    )
    def test_every_family_runs(self, instance_path, capsys, spec):
        code = main(
            ["solve", str(instance_path), "--solver", spec, "--budget", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"[{spec}]" in out
        assert "evaluations" in out

    def test_unknown_solver_exit_code(self, instance_path, capsys):
        code = main(["solve", str(instance_path), "--solver", "quantum:x"])
        assert code == 2
        assert "unknown solver family" in capsys.readouterr().err

    @pytest.mark.parametrize("engine", ["dense", "sparse"])
    def test_engine_forced(self, instance_path, capsys, engine):
        code = main(
            [
                "solve", str(instance_path), "--solver", "search:swap",
                "--budget", "2", "--engine", engine,
            ]
        )
        assert code == 0
        assert "giant=" in capsys.readouterr().out

    def test_warm_from_placement(self, instance_path, tmp_path, capsys):
        best = tmp_path / "best.json"
        assert main(
            [
                "solve", str(instance_path), "--solver", "search:swap",
                "--budget", "2", "--output", str(best),
            ]
        ) == 0
        code = main(
            [
                "solve", str(instance_path), "--solver", "tabu:swap",
                "--budget", "2", "--warm-from", str(best),
            ]
        )
        assert code == 0
        assert "warm start" in capsys.readouterr().out


class TestScenario:
    @pytest.mark.parametrize("kind", ["drift", "churn", "outage", "degrade"])
    def test_kinds_run_and_render_timeline(self, instance_path, capsys, kind):
        code = main(
            [
                "scenario", str(instance_path), "--kind", kind,
                "--steps", "2", "--budget", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "initial deployment" in out
        assert "warm" in out

    def test_cold_flag(self, instance_path, capsys):
        code = main(
            [
                "scenario", str(instance_path), "--steps", "2",
                "--budget", "2", "--cold",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "/ cold]" in out

    def test_chart_flag(self, instance_path, capsys):
        code = main(
            [
                "scenario", str(instance_path), "--steps", "2",
                "--budget", "2", "--chart",
            ]
        )
        assert code == 0
        assert "fitness" in capsys.readouterr().out

    def test_invalid_steps(self, instance_path, capsys):
        code = main(
            ["scenario", str(instance_path), "--steps", "0", "--budget", "2"]
        )
        assert code == 2


class TestScenarioFleet:
    def test_grid_runs_and_renders_tables(self, instance_path, capsys):
        code = main(
            [
                "scenario-fleet", str(instance_path),
                "--kinds", "drift,outage", "--steps", "2",
                "--solvers", "search:swap,tabu:swap",
                "--seeds", "2", "--budget", "2", "--candidates", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 scenarios x 2 solvers x 2 seeds" in out
        assert "mean fitness" in out
        assert "drift-2x2" in out and "outage-2x1" in out
        assert "tabu:swap" in out
        assert "event impact" in out

    def test_both_arms_add_regret_table(self, instance_path, capsys):
        code = main(
            [
                "scenario-fleet", str(instance_path),
                "--kinds", "drift", "--steps", "2",
                "--seeds", "2", "--budget", "2", "--candidates", "4",
                "--arms", "both",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "warm-vs-cold regret" in out
        assert "warm" in out and "cold" in out

    def test_chart_flag(self, instance_path, capsys):
        code = main(
            [
                "scenario-fleet", str(instance_path),
                "--kinds", "drift", "--steps", "2",
                "--seeds", "2", "--budget", "2", "--candidates", "4",
                "--chart",
            ]
        )
        assert code == 0
        assert "recovery curves" in capsys.readouterr().out

    def test_workers_match_serial(self, instance_path, capsys):
        outputs = []
        for workers in ("1", "3"):
            code = main(
                [
                    "scenario-fleet", str(instance_path),
                    "--kinds", "drift", "--steps", "2",
                    "--seeds", "3", "--budget", "2", "--candidates", "4",
                    "--workers", workers,
                ]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_invalid_kind(self, instance_path, capsys):
        code = main(
            [
                "scenario-fleet", str(instance_path),
                "--kinds", "meteor", "--steps", "2", "--budget", "2",
            ]
        )
        assert code == 2
        assert "unknown scenario kind" in capsys.readouterr().err

    def test_invalid_steps(self, instance_path, capsys):
        code = main(
            [
                "scenario-fleet", str(instance_path),
                "--steps", "0", "--budget", "2",
            ]
        )
        assert code == 2


class TestEngineEndToEnd:
    def test_place_engine_sparse(self, instance_path, capsys):
        code = main(["place", str(instance_path), "--engine", "sparse"])
        assert code == 0
        assert "giant=" in capsys.readouterr().out

    def test_search_engines_agree(self, instance_path, capsys):
        outputs = []
        for engine in ("dense", "sparse"):
            code = main(
                [
                    "search", str(instance_path), "--phases", "3",
                    "--candidates", "4", "--engine", engine,
                ]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_replicate_engine_flag(self, instance_path, capsys):
        code = main(
            [
                "replicate", str(instance_path), "--seeds", "2",
                "--phases", "2", "--candidates", "2", "--engine", "dense",
            ]
        )
        assert code == 0
        assert "stand-alone ad hoc methods" in capsys.readouterr().out


class TestGa:
    def test_ga_runs(self, instance_path, tmp_path, capsys):
        out_path = tmp_path / "best.json"
        code = main(
            [
                "ga",
                str(instance_path),
                "--init",
                "hotspot",
                "--population",
                "6",
                "--generations",
                "3",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "generations" in out
        assert out_path.exists()
