"""Unit, property and statistical tests for the client distributions.

Statistical checks compare our from-scratch samplers (Box-Muller,
inverse transforms) against ``scipy.stats`` reference moments on large
samples.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import GridArea
from repro.distributions import (
    ExponentialDistribution,
    NormalDistribution,
    UniformDistribution,
    WeibullDistribution,
)

ALL_DISTRIBUTIONS = [
    UniformDistribution(),
    NormalDistribution(),
    ExponentialDistribution(),
    WeibullDistribution(),
]


@pytest.mark.parametrize("law", ALL_DISTRIBUTIONS, ids=lambda d: d.name)
class TestCommonBehaviour:
    def test_samples_inside_grid(self, law, rng):
        grid = GridArea(24, 16)
        points = law.sample_points(200, grid, rng)
        assert len(points) == 200
        assert all(grid.contains(p) for p in points)

    def test_sample_clients_builds_valid_set(self, law, rng):
        grid = GridArea(16, 16)
        clients = law.sample_clients(32, grid, rng)
        assert len(clients) == 32
        assert all(grid.contains(c.cell) for c in clients)

    def test_deterministic_by_seed(self, law):
        grid = GridArea(20, 20)
        a = law.sample_points(64, grid, np.random.default_rng(42))
        b = law.sample_points(64, grid, np.random.default_rng(42))
        assert a == b

    def test_zero_count(self, law, rng):
        grid = GridArea(8, 8)
        assert law.sample_points(0, grid, rng) == []

    def test_negative_count_rejected(self, law, rng):
        with pytest.raises(ValueError):
            law.sample_axis_truncated(-1, 8, rng)

    @settings(max_examples=15, deadline=None)
    @given(extent=st.integers(1, 64), seed=st.integers(0, 10_000))
    def test_truncated_axis_always_in_range(self, law, extent, seed):
        values = law.sample_axis_truncated(
            100, extent, np.random.default_rng(seed)
        )
        assert values.min() >= 0
        assert values.max() < extent
        assert values.dtype.kind == "i"


class TestUniform:
    def test_mean_matches_reference(self):
        law = UniformDistribution()
        samples = law.sample_axis(50_000, 100, np.random.default_rng(0))
        assert samples.mean() == pytest.approx(50.0, abs=0.5)

    def test_spread_covers_grid(self, rng):
        grid = GridArea(10, 10)
        points = law_points = UniformDistribution().sample_points(2000, grid, rng)
        xs = {p.x for p in law_points}
        assert len(xs) == 10  # every column hit


class TestNormal:
    def test_defaults_follow_paper(self):
        law = NormalDistribution()
        assert law.axis_mean(128) == 64.0
        assert law.axis_std(128) == pytest.approx(12.8)

    def test_explicit_parameters(self):
        law = NormalDistribution(mean=10.0, std=2.0)
        assert law.axis_mean(128) == 10.0
        assert law.axis_std(128) == 2.0

    def test_invalid_std_rejected(self):
        with pytest.raises(ValueError):
            NormalDistribution(std=0.0)

    def test_box_muller_moments_match_scipy(self):
        law = NormalDistribution(mean=0.0, std=1.0)
        samples = law.sample_axis(100_000, 128, np.random.default_rng(1))
        ref = scipy.stats.norm(loc=0.0, scale=1.0)
        assert samples.mean() == pytest.approx(ref.mean(), abs=0.02)
        assert samples.std() == pytest.approx(ref.std(), abs=0.02)
        # Normality sanity via skewness and excess kurtosis.
        assert scipy.stats.skew(samples) == pytest.approx(0.0, abs=0.05)
        assert scipy.stats.kurtosis(samples) == pytest.approx(0.0, abs=0.1)

    def test_clusters_near_center(self, rng):
        grid = GridArea(128, 128)
        points = NormalDistribution().sample_points(1000, grid, rng)
        xs = np.array([p.x for p in points])
        # ~95% of mass within 2 sigma of the mean.
        within = np.abs(xs - 64) <= 2 * 12.8
        assert within.mean() > 0.9

    def test_odd_count_box_muller(self, rng):
        # Odd counts exercise the pair-generation trim.
        samples = NormalDistribution().sample_axis(7, 128, rng)
        assert samples.shape == (7,)


class TestExponential:
    def test_default_scale(self):
        assert ExponentialDistribution().axis_scale(128) == 32.0
        assert ExponentialDistribution(scale=10.0).axis_scale(128) == 10.0

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            ExponentialDistribution(scale=-1.0)

    def test_inverse_transform_moments_match_scipy(self):
        law = ExponentialDistribution(scale=5.0)
        samples = law.sample_axis(100_000, 128, np.random.default_rng(2))
        ref = scipy.stats.expon(scale=5.0)
        assert samples.mean() == pytest.approx(ref.mean(), rel=0.02)
        assert samples.std() == pytest.approx(ref.std(), rel=0.02)

    def test_clusters_near_origin(self, rng):
        grid = GridArea(128, 128)
        points = ExponentialDistribution().sample_points(1000, grid, rng)
        xs = np.array([p.x for p in points])
        # More than half the mass in the first quarter of the axis.
        assert (xs < 32).mean() > 0.5

    def test_non_negative(self, rng):
        samples = ExponentialDistribution().sample_axis(1000, 128, rng)
        assert samples.min() >= 0


class TestWeibull:
    def test_default_parameters(self):
        law = WeibullDistribution()
        assert law.shape == 1.2
        assert law.axis_scale(128) == pytest.approx(128 / 3)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WeibullDistribution(shape=0.0)
        with pytest.raises(ValueError):
            WeibullDistribution(scale=0.0)

    def test_inverse_transform_moments_match_scipy(self):
        law = WeibullDistribution(shape=1.5, scale=10.0)
        samples = law.sample_axis(100_000, 128, np.random.default_rng(3))
        ref = scipy.stats.weibull_min(c=1.5, scale=10.0)
        assert samples.mean() == pytest.approx(ref.mean(), rel=0.02)
        assert samples.std() == pytest.approx(ref.std(), rel=0.03)

    def test_shape_one_equals_exponential(self):
        # Weibull(k=1, scale) is Exponential(scale); same seeds, same draws.
        seed = 99
        weibull = WeibullDistribution(shape=1.0, scale=7.0).sample_axis(
            1000, 128, np.random.default_rng(seed)
        )
        exponential = ExponentialDistribution(scale=7.0).sample_axis(
            1000, 128, np.random.default_rng(seed)
        )
        assert np.allclose(weibull, exponential)

    def test_clusters_near_origin(self, rng):
        grid = GridArea(128, 128)
        points = WeibullDistribution().sample_points(1000, grid, rng)
        xs = np.array([p.x for p in points])
        assert (xs < 64).mean() > 0.6
