"""Unit tests for the distribution registry."""

from __future__ import annotations

import pytest

from repro.distributions import (
    ExponentialDistribution,
    NormalDistribution,
    UniformDistribution,
    WeibullDistribution,
    available_distributions,
    make_distribution,
    register_distribution,
)
from repro.distributions import registry as registry_module


class TestRegistry:
    def test_paper_distributions_available(self):
        names = available_distributions()
        assert {"uniform", "normal", "exponential", "weibull"} <= set(names)

    def test_make_by_name(self):
        assert isinstance(make_distribution("uniform"), UniformDistribution)
        assert isinstance(make_distribution("normal"), NormalDistribution)
        assert isinstance(make_distribution("exponential"), ExponentialDistribution)
        assert isinstance(make_distribution("weibull"), WeibullDistribution)

    def test_make_with_parameters(self):
        law = make_distribution("weibull", shape=0.8, scale=10.0)
        assert law.shape == 0.8
        assert law.scale == 10.0

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            make_distribution("zipf")

    def test_register_custom(self, monkeypatch):
        monkeypatch.setattr(
            registry_module, "_FACTORIES", dict(registry_module._FACTORIES)
        )
        register_distribution("custom", UniformDistribution)
        assert isinstance(make_distribution("custom"), UniformDistribution)

    def test_register_duplicate_rejected(self, monkeypatch):
        monkeypatch.setattr(
            registry_module, "_FACTORIES", dict(registry_module._FACTORIES)
        )
        with pytest.raises(ValueError, match="already registered"):
            register_distribution("uniform", UniformDistribution)
